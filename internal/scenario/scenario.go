// Package scenario composes time-varying simulations: phase schedules
// that retarget the GPU's frame workload and swap or perturb per-core
// CPU trace parameters at declared cycle boundaries, seed-driven
// random scenario generation for property-based campaigns, and replay
// of externally captured CPU+GPU traces (the tracev2 subpackage).
//
// The paper evaluates its throttling proposal on a fixed matrix of
// SPEC mixes × game regions, but the proposal's whole point is
// reacting to time-varying GPU demand — app launches, scene changes,
// frame-rate cliffs. A Spec expresses such a timeline declaratively;
// Build wires it into a sim.System through the sim.Scenario hook,
// which both the fast-forward engine (a boundary caps NextWake) and
// the parallel engine (the conductor applies transitions at its
// barrier) honor, so a scenario run is deterministic on every engine.
// A static spec with no phases degenerates to exactly the fixed-mix
// path — the golden suite's hashes are unchanged by construction.
//
// See DESIGN.md §12 for the phase semantics, the tracev2 format, and
// the property-suite methodology built on this package.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/mem"
	"repro/internal/scenario/tracev2"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// SpecVersion is the spec-format generation this package understands.
const SpecVersion = 1

// maxWSBytes bounds declared working sets: beyond 64 GiB is spec
// corruption, not a workload.
const maxWSBytes = 1 << 36

// CoreSpec selects one core's synthetic workload: a catalog SPEC id
// (workloads.Spec) or explicit trace parameters, never both.
type CoreSpec struct {
	SpecID int           `json:"spec,omitempty"`
	Params *trace.Params `json:"params,omitempty"`
}

// resolve returns the trace parameters the core spec denotes.
func (c CoreSpec) resolve() (trace.Params, error) {
	switch {
	case c.SpecID != 0 && c.Params != nil:
		return trace.Params{}, fmt.Errorf("scenario: core sets both spec %d and explicit params", c.SpecID)
	case c.SpecID != 0:
		sp, err := workloads.Spec(c.SpecID)
		if err != nil {
			return trace.Params{}, fmt.Errorf("scenario: %v", err)
		}
		return sp.Params, nil
	case c.Params != nil:
		if err := checkParams(*c.Params); err != nil {
			return trace.Params{}, err
		}
		return *c.Params, nil
	}
	return trace.Params{}, fmt.Errorf("scenario: core needs a spec id or explicit params")
}

// checkParams rejects explicit trace parameters outside the ranges
// the generator is meant for. The fraction checks are written to
// catch NaN (which fails every comparison) as well as range errors.
func checkParams(p trace.Params) error {
	inUnit := func(f float64) bool { return f >= 0 && f <= 1 }
	switch {
	case p.MemPerKilo < 0 || p.MemPerKilo > 1000:
		return fmt.Errorf("scenario: MemPerKilo %d out of range [0, 1000]", p.MemPerKilo)
	case !inUnit(p.WriteFrac):
		return fmt.Errorf("scenario: WriteFrac %g out of range [0, 1]", p.WriteFrac)
	case !inUnit(p.StreamFrac):
		return fmt.Errorf("scenario: StreamFrac %g out of range [0, 1]", p.StreamFrac)
	case !inUnit(p.HotFrac):
		return fmt.Errorf("scenario: HotFrac %g out of range [0, 1]", p.HotFrac)
	case p.WSBytes > maxWSBytes:
		return fmt.Errorf("scenario: WSBytes %d out of range [0, %d]", p.WSBytes, uint64(maxWSBytes))
	case p.HotBytes > maxWSBytes:
		return fmt.Errorf("scenario: HotBytes %d out of range [0, %d]", p.HotBytes, uint64(maxWSBytes))
	}
	return nil
}

// CoreChange re-targets one core's workload at a phase boundary.
type CoreChange struct {
	Core   int           `json:"core"`
	SpecID int           `json:"spec,omitempty"`
	Params *trace.Params `json:"params,omitempty"`
}

// Phase is one segment of the scenario timeline. Phase 0 begins at
// cycle 0 (Build applies its settings before the first tick); phase i
// begins when the previous phases' Cycles have elapsed. Every phase
// except the last must have a positive duration; the last phase
// persists to the end of the run regardless of its Cycles.
type Phase struct {
	// Name labels the segment ("app-launch", "alt-tab").
	Name string `json:"name,omitempty"`
	// Cycles is the segment duration in CPU cycles.
	Cycles uint64 `json:"cycles,omitempty"`
	// GPUScale, when positive, retargets the GPU scene-work set-point
	// as the phase begins (1.0 = the app model's nominal frame).
	GPUScale float64 `json:"gpu_scale,omitempty"`
	// Cores swaps per-core workloads as the phase begins.
	Cores []CoreChange `json:"cores,omitempty"`
}

// Spec is a complete declarative scenario: the initial workloads plus
// the phase timeline, optionally driven by a tracev2 capture. It is
// the unit that participates in the experiment idempotency key — see
// Digest.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// Seed records the generator seed for Rand-produced specs (purely
	// documentary for hand-written ones, but part of the digest).
	Seed uint64 `json:"seed,omitempty"`
	// Game names the GPU workload ("" = no GPU, a CPU-only scenario).
	Game string `json:"game,omitempty"`
	// Cores lists the initial per-core workloads; its length is the
	// system's core count.
	Cores []CoreSpec `json:"cores,omitempty"`
	// Phases is the timeline (empty = static, the degenerate case).
	Phases []Phase `json:"phases,omitempty"`

	// TracePath names a tracev2 file on disk; Trace holds the same
	// content inline (how a spec travels to a hetsimd server, which
	// has no access to the client's filesystem — see Inline). At most
	// one may be set.
	TracePath string `json:"trace_path,omitempty"`
	Trace     string `json:"trace,omitempty"`
}

// ParseSpec decodes a spec strictly: unknown fields are errors, so a
// typo in a hand-written scenario file fails loudly instead of being
// silently ignored.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	return &sp, nil
}

// LoadSpec reads and parses a scenario file. A relative TracePath is
// resolved against the spec file's own directory — a spec references
// its sibling capture the same way regardless of the caller's working
// directory.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	sp, err := ParseSpec(data)
	if err != nil {
		return nil, err
	}
	if sp.TracePath != "" && !filepath.IsAbs(sp.TracePath) {
		sp.TracePath = filepath.Join(filepath.Dir(path), sp.TracePath)
	}
	return sp, nil
}

// Validate reports whether the spec describes a runnable scenario.
// It is pure: a TracePath is checked for shape only when Build (or
// Inline) reads it.
func (sp *Spec) Validate() error {
	if sp == nil {
		return fmt.Errorf("scenario: nil spec")
	}
	if sp.Version != SpecVersion {
		return fmt.Errorf("scenario: spec version %d (this build understands %d)", sp.Version, SpecVersion)
	}
	if len(sp.Cores) > int(mem.SourceGPU) {
		return fmt.Errorf("scenario: %d cores out of range [0, %d]", len(sp.Cores), int(mem.SourceGPU))
	}
	if sp.Game == "" && len(sp.Cores) == 0 {
		return fmt.Errorf("scenario: needs at least one core or a game")
	}
	if sp.Game != "" {
		if _, err := workloads.GameByName(sp.Game); err != nil {
			return fmt.Errorf("scenario: %v", err)
		}
	}
	for i, c := range sp.Cores {
		if _, err := c.resolve(); err != nil {
			return fmt.Errorf("core %d: %v", i, err)
		}
	}
	var total uint64
	for i, ph := range sp.Phases {
		last := i == len(sp.Phases)-1
		if ph.Cycles == 0 && !last {
			return fmt.Errorf("scenario: phase %d (%q) has zero duration but is not last", i, ph.Name)
		}
		if t := total + ph.Cycles; t < total {
			return fmt.Errorf("scenario: phase %d (%q) overflows the cycle timeline", i, ph.Name)
		} else {
			total = t
		}
		if ph.GPUScale != 0 {
			if math.IsNaN(ph.GPUScale) || ph.GPUScale < 0.05 || ph.GPUScale > 100 {
				return fmt.Errorf("scenario: phase %d (%q) gpu_scale %g out of range [0.05, 100]", i, ph.Name, ph.GPUScale)
			}
			if sp.Game == "" {
				return fmt.Errorf("scenario: phase %d (%q) sets gpu_scale but the scenario has no game", i, ph.Name)
			}
		}
		for _, ch := range ph.Cores {
			if ch.Core < 0 || ch.Core >= len(sp.Cores) {
				return fmt.Errorf("scenario: phase %d (%q) changes core %d, but the scenario has %d core(s)", i, ph.Name, ch.Core, len(sp.Cores))
			}
			if _, err := (CoreSpec{SpecID: ch.SpecID, Params: ch.Params}).resolve(); err != nil {
				return fmt.Errorf("phase %d (%q) core %d: %v", i, ph.Name, ch.Core, err)
			}
		}
	}
	if sp.TracePath != "" && sp.Trace != "" {
		return fmt.Errorf("scenario: trace_path and inline trace are mutually exclusive")
	}
	if sp.Trace != "" {
		tr, err := tracev2.Parse(strings.NewReader(sp.Trace))
		if err != nil {
			return err
		}
		if err := sp.checkTrace(tr); err != nil {
			return err
		}
	}
	return nil
}

// checkTrace cross-checks a parsed capture against the spec shape.
func (sp *Spec) checkTrace(tr *tracev2.Trace) error {
	if tr.Header.Cores > len(sp.Cores) {
		return fmt.Errorf("scenario: trace drives %d core(s) but the spec declares %d", tr.Header.Cores, len(sp.Cores))
	}
	if len(tr.Frames) > 0 && sp.Game == "" {
		return fmt.Errorf("scenario: trace has GPU frame records but the spec has no game")
	}
	return nil
}

// Inline replaces a TracePath reference with the file's content, so
// the spec becomes self-contained for submission to a server. A spec
// without a TracePath is returned unchanged.
func (sp *Spec) Inline() error {
	if sp.TracePath == "" {
		return nil
	}
	data, err := os.ReadFile(sp.TracePath)
	if err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if _, err := tracev2.Parse(strings.NewReader(string(data))); err != nil {
		return err
	}
	sp.Trace = string(data)
	sp.TracePath = ""
	return nil
}

// Digest is the spec's identity in experiment keys: the first 12 hex
// characters of the sha256 of its canonical JSON encoding. Two specs
// digest equal exactly when every field — including an inlined trace —
// is equal, which is what makes "scn/<digest>/<policy>" an idempotency
// key.
func (sp *Spec) Digest() string {
	b, err := json.Marshal(sp)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// schedule implements sim.Scenario for a validated spec: bounds[i] is
// the absolute cycle at which phase i begins, next indexes the first
// phase not yet applied. Phase 0 is applied by Build before the first
// tick, so a fresh schedule starts with next = 1.
type schedule struct {
	phases []Phase
	bounds []uint64
	next   int
}

// newSchedule lays out the phase timeline; nil when the spec has no
// transitions to apply mid-run (the static degenerate case keeps
// Config.Scenario nil and costs nothing).
func newSchedule(sp *Spec) *schedule {
	if len(sp.Phases) < 2 {
		return nil
	}
	sc := &schedule{phases: sp.Phases, next: 1}
	sc.bounds = make([]uint64, len(sp.Phases))
	var at uint64
	for i, ph := range sp.Phases {
		sc.bounds[i] = at
		at += ph.Cycles
	}
	return sc
}

// Apply implements sim.Scenario.
func (sc *schedule) Apply(s *sim.System, cycle uint64) {
	for sc.next < len(sc.phases) && sc.bounds[sc.next] <= cycle {
		applyPhase(s, sc.phases[sc.next])
		sc.next++
	}
}

// NextChange implements sim.Scenario.
func (sc *schedule) NextChange(now uint64) uint64 {
	for i := sc.next; i < len(sc.phases); i++ {
		if sc.bounds[i] > now {
			return sc.bounds[i]
		}
	}
	return ^uint64(0)
}

// applyPhase drives the phase's settings through the System's levers.
// Validate has already resolved every workload, so resolution cannot
// fail here.
func applyPhase(s *sim.System, ph Phase) {
	if ph.GPUScale > 0 && s.GPU != nil {
		s.GPU.SetWorkScale(ph.GPUScale)
	}
	for _, ch := range ph.Cores {
		p, err := (CoreSpec{SpecID: ch.SpecID, Params: ch.Params}).resolve()
		if err != nil {
			continue
		}
		s.SetCoreWorkload(ch.Core, p)
	}
}
