package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario/tracev2"
)

// FuzzScenarioSpec feeds arbitrary bytes to the spec parser — the
// entry point for every hand-written scenario file and every hetsimd
// submission. Properties: ParseSpec and Validate never panic; an
// accepted spec digests stably, survives a JSON round trip with its
// digest (and therefore its idempotency key) intact, and lays out a
// schedule without panicking.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"game":"DOOM3","cores":[{"spec":429}]}`))
	f.Add([]byte(`{"version":1,"cores":[{"params":{"Name":"x","MemPerKilo":200}}],` +
		`"phases":[{"cycles":1000},{"cores":[{"core":0,"spec":462}]}]}`))
	f.Add([]byte(`{"version":1,"game":"COD2","cores":[{"spec":429}],` +
		`"phases":[{"cycles":5,"gpu_scale":1.5},{"name":"end"}]}`))
	f.Add([]byte(`{"version":1,"cores":[{"spec":429}],"trace":"{\"v\":2,\"cores\":1}\n{\"t\":\"cpu\",\"core\":0,\"addr\":64}\n"}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"game":"DOOM3","phases":[{"gpu_scale":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			return
		}
		d := sp.Digest()
		if len(d) != 12 {
			t.Fatalf("digest %q is not 12 chars", d)
		}
		if sp.Digest() != d {
			t.Fatal("digest is not stable")
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		again, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("valid spec failed to re-parse: %v", err)
		}
		if again.Digest() != d {
			t.Fatalf("digest changed across a JSON round trip: %s -> %s", d, again.Digest())
		}
		// Schedule layout must hold for anything Validate accepts.
		if sc := newSchedule(sp); sc != nil {
			if next := sc.NextChange(0); next == 0 {
				t.Fatal("NextChange(0) returned 0: a boundary before the first tick")
			}
		}
	})
}

// FuzzTraceV2 feeds arbitrary bytes to the capture parser. Properties:
// Parse never panics, and an accepted capture re-emits through Write
// and re-parses equal to itself (canonical form is a fixed point).
func FuzzTraceV2(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{"v":2,"cores":1}` + "\n" + `{"t":"cpu","core":0,"nm":3,"addr":64,"w":true}` + "\n"))
	f.Add([]byte(`{"v":2,"cores":0,"game":"DOOM3"}` + "\n" + `{"t":"gpu","frame":0,"scale":1.5}` + "\n"))
	f.Add([]byte(`{"v":1,"cores":1}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := tracev2.Parse(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := tracev2.Write(&buf, tr); err != nil {
			t.Fatalf("accepted capture failed to re-emit: %v", err)
		}
		if _, err := tracev2.Parse(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("canonical re-emission failed to parse: %v", err)
		}
	})
}
