package scenario

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Rand derives a complete random scenario from one seed: core count,
// per-core workloads (catalog SPEC apps or synthetic parameters drawn
// from the declared distributions below), a game or none, and a phase
// timeline with GPU-scale retargets and core swaps. The same seed
// always produces the same spec — a failing property-suite seed is a
// complete reproduction recipe — and every spec Rand returns
// validates (a property the suite asserts directly).
//
// Distributions (chosen to straddle the machine's contention knees at
// the scales the test suites run):
//   - cores: 1–4, uniform; game: present with probability 3/4
//   - per-core: catalog app (uniform over SpecIDs) or synthetic with
//     MemPerKilo ∈ [100,400), WriteFrac ∈ [0.1,0.45), StreamFrac ∈
//     [0,0.05), HotFrac ∈ [0.9,0.985), HotBytes ∈ {64,128,256} KiB,
//     WSBytes log-uniform over 2–64 MiB
//   - phases: 1–4 segments of 10k–120k cycles; each later phase
//     retargets GPUScale ∈ [0.5,2.0) with probability 1/2 (game
//     scenarios only) and reswaps each core with probability 1/3
func Rand(seed uint64) *Spec {
	r := rng.New(seed)
	sp := &Spec{Version: SpecVersion, Seed: seed, Name: fmt.Sprintf("rand-%d", seed)}

	games := workloads.Games()
	if r.Bool(0.75) {
		sp.Game = games[r.Intn(len(games))].Name
	}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		sp.Cores = append(sp.Cores, randCore(r))
	}

	phases := 1 + r.Intn(4)
	for i := 0; i < phases; i++ {
		ph := Phase{Name: fmt.Sprintf("phase-%d", i)}
		if i < phases-1 {
			ph.Cycles = 10_000 + r.Uint64n(110_000)
		}
		if i > 0 {
			if sp.Game != "" && r.Bool(0.5) {
				ph.GPUScale = 0.5 + 1.5*r.Float64()
			}
			for c := 0; c < n; c++ {
				if r.Bool(1.0 / 3.0) {
					cs := randCore(r)
					ph.Cores = append(ph.Cores, CoreChange{Core: c, SpecID: cs.SpecID, Params: cs.Params})
				}
			}
		}
		sp.Phases = append(sp.Phases, ph)
	}
	return sp
}

// randCore draws one core workload.
func randCore(r *rng.RNG) CoreSpec {
	if r.Bool(0.5) {
		ids := workloads.SpecIDs()
		return CoreSpec{SpecID: ids[r.Intn(len(ids))]}
	}
	return CoreSpec{Params: randParams(r)}
}

// randParams draws synthetic trace parameters from the package's
// declared distributions.
func randParams(r *rng.RNG) *trace.Params {
	return &trace.Params{
		Name:       fmt.Sprintf("synth-%04d", r.Intn(10_000)),
		MemPerKilo: 100 + r.Intn(300),
		WriteFrac:  0.1 + 0.35*r.Float64(),
		StreamFrac: 0.05 * r.Float64(),
		HotFrac:    0.9 + 0.085*r.Float64(),
		HotBytes:   uint64(1) << (16 + r.Intn(3)),
		WSBytes:    uint64(1) << (21 + r.Intn(6)),
		Seed:       r.Uint64(),
	}
}
