package scenario

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario/tracev2"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// propCfg is the property suite's run size: tiny windows so hundreds
// of scenarios stay fast under -race, but through warm-up, frames and
// every phase boundary the generator can emit.
func propCfg(p sim.Policy) sim.Config {
	cfg := sim.DefaultConfig(256)
	cfg.Policy = p
	cfg.WarmupInstr = 2_000
	cfg.WarmupFrames = 1
	cfg.MeasureInstr = 5_000
	cfg.MinFrames = 1
	cfg.MaxCycles = 10_000_000
	return cfg
}

// TestRandAlwaysValidates is the generator's own contract: every seed
// yields a spec that validates, and the same seed yields the same
// spec — a failing campaign seed is a complete reproduction recipe.
func TestRandAlwaysValidates(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		sp := Rand(seed)
		if err := sp.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if again := Rand(seed); !reflect.DeepEqual(sp, again) {
			t.Fatalf("seed %d: Rand is not deterministic", seed)
		}
		if sp.Seed != seed {
			t.Fatalf("seed %d: spec records seed %d", seed, sp.Seed)
		}
	}
}

// TestRandSeedsDiffer: distinct seeds must explore distinct scenarios,
// or the campaign's breadth is an illusion.
func TestRandSeedsDiffer(t *testing.T) {
	seen := map[string]uint64{}
	for seed := uint64(0); seed < 200; seed++ {
		d := Rand(seed).Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("seeds %d and %d produced the same digest %s", prev, seed, d)
		}
		seen[d] = seed
	}
}

// TestDigestIdentity: the digest is stable across calls, 12 lowercase
// hex characters, and sensitive to every field that changes what runs.
func TestDigestIdentity(t *testing.T) {
	sp := Rand(42)
	d := sp.Digest()
	if d != sp.Digest() {
		t.Fatal("digest is not stable")
	}
	if len(d) != 12 || strings.ToLower(d) != d {
		t.Fatalf("digest %q is not 12 lowercase hex chars", d)
	}
	mut := *sp
	mut.Seed++
	if mut.Digest() == d {
		t.Fatal("digest ignored a field change")
	}
}

// TestScheduleLayout pins the phase semantics: phases are segments,
// bounds are cumulative, a fresh schedule has already consumed phase 0
// (Build applies it before the first tick), and NextChange reports the
// exact next boundary or never.
func TestScheduleLayout(t *testing.T) {
	sp := &Spec{
		Version: SpecVersion,
		Cores:   []CoreSpec{{SpecID: 429}},
		Phases: []Phase{
			{Name: "a", Cycles: 1000},
			{Name: "b", Cycles: 500},
			{Name: "c"},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := newSchedule(sp)
	if sc == nil {
		t.Fatal("newSchedule returned nil for a 3-phase spec")
	}
	if want := []uint64{0, 1000, 1500}; !reflect.DeepEqual(sc.bounds, want) {
		t.Fatalf("bounds %v, want %v", sc.bounds, want)
	}
	if sc.next != 1 {
		t.Fatalf("fresh schedule next=%d, want 1 (phase 0 is Build's)", sc.next)
	}
	never := ^uint64(0)
	if got := sc.NextChange(0); got != 1000 {
		t.Fatalf("NextChange(0)=%d, want 1000", got)
	}
	if got := sc.NextChange(1000); got != 1500 {
		t.Fatalf("NextChange(1000)=%d, want 1500", got)
	}
	if got := sc.NextChange(1500); got != never {
		t.Fatalf("NextChange(1500)=%d, want never", got)
	}

	// Apply consumes every boundary at or before the given cycle, so a
	// schedule can never be left behind the clock.
	cfg := propCfg(sim.PolicyBaseline)
	cfg.NumCPUs = 1
	cfg.WarmupFrames, cfg.MinFrames = 0, 0
	s := sim.NewSystem(cfg, nil, []trace.Params{workloads.MustSpec(429).Params})
	sc.Apply(s, 1500)
	if sc.next != 3 {
		t.Fatalf("Apply(1500) left next=%d, want 3", sc.next)
	}
	if got := sc.NextChange(1500); got != never {
		t.Fatalf("exhausted schedule NextChange=%d, want never", got)
	}
}

// TestSingleOrNoPhaseIsStatic: specs with no mid-run transitions keep
// Config.Scenario nil, which is what guarantees the golden suite's
// static-mix hashes are unchanged by construction.
func TestSingleOrNoPhaseIsStatic(t *testing.T) {
	if sc := newSchedule(&Spec{Version: SpecVersion}); sc != nil {
		t.Fatal("0-phase spec built a schedule")
	}
	one := &Spec{Version: SpecVersion, Phases: []Phase{{Name: "only"}}}
	if sc := newSchedule(one); sc != nil {
		t.Fatal("1-phase spec built a schedule")
	}
}

// TestStaticSpecMatchesMix is the degenerate-case proof: a phase-less
// scenario declaring exactly mix M7's workloads must produce the same
// Result as the fixed-mix path, field for field (only the label
// differs). The scenario engine costs nothing when nothing varies.
func TestStaticSpecMatchesMix(t *testing.T) {
	m := workloads.EvalMixes()[6] // M7
	sp := &Spec{Version: SpecVersion, Game: m.Game}
	for _, id := range m.SpecIDs {
		sp.Cores = append(sp.Cores, CoreSpec{SpecID: id})
	}

	cfg := propCfg(sim.PolicyThrottleCPUPrio)
	cfg.NumCPUs = len(m.SpecIDs)
	want := sim.RunMix(cfg, m)

	got, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if got.MixID != "scn:"+sp.Digest() {
		t.Fatalf("scenario result labeled %q", got.MixID)
	}
	got.MixID = want.MixID
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("static scenario diverged from the mix path:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunDeterminism: the same spec under the same config produces the
// same Result, run to run.
func TestRunDeterminism(t *testing.T) {
	sp := Rand(7)
	cfg := propCfg(sim.PolicyBaseline)
	a, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenario run is not deterministic:\n  %+v\nvs %+v", a, b)
	}
}

// TestBuildConcurrentSharedSpec: sweep cells share one parsed *Spec
// across goroutines; Build must give each run private schedule and
// source state. Run under -race this is the aliasing proof.
func TestBuildConcurrentSharedSpec(t *testing.T) {
	sp := Rand(11)
	cfg := propCfg(sim.PolicyThrottle)
	results := make([]sim.Result, 4)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := Run(cfg, sp)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent run %d diverged", i)
		}
	}
}

// TestValidateRejects is the table of malformed specs a hand-written
// scenario file might contain; every one must fail loudly.
func TestValidateRejects(t *testing.T) {
	nan := math.NaN()
	base := func() *Spec {
		return &Spec{Version: SpecVersion, Game: "DOOM3", Cores: []CoreSpec{{SpecID: 429}}}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"nil spec", nil},
		{"wrong version", func(sp *Spec) { sp.Version = 99 }},
		{"no workloads", func(sp *Spec) { sp.Game = ""; sp.Cores = nil }},
		{"unknown game", func(sp *Spec) { sp.Game = "PONG" }},
		{"unknown spec id", func(sp *Spec) { sp.Cores[0].SpecID = 999 }},
		{"core with both", func(sp *Spec) { sp.Cores[0].Params = &trace.Params{MemPerKilo: 100} }},
		{"core with neither", func(sp *Spec) { sp.Cores[0] = CoreSpec{} }},
		{"params NaN fraction", func(sp *Spec) {
			sp.Cores[0] = CoreSpec{Params: &trace.Params{MemPerKilo: 100, HotFrac: nan}}
		}},
		{"params fraction above one", func(sp *Spec) {
			sp.Cores[0] = CoreSpec{Params: &trace.Params{MemPerKilo: 100, WriteFrac: 1.5}}
		}},
		{"params absurd working set", func(sp *Spec) {
			sp.Cores[0] = CoreSpec{Params: &trace.Params{MemPerKilo: 100, WSBytes: maxWSBytes * 2}}
		}},
		{"zero-cycle interior phase", func(sp *Spec) {
			sp.Phases = []Phase{{Name: "a"}, {Name: "b"}}
		}},
		{"timeline overflow", func(sp *Spec) {
			sp.Phases = []Phase{{Cycles: ^uint64(0)}, {Cycles: 2}, {}}
		}},
		{"gpu_scale out of range", func(sp *Spec) {
			sp.Phases = []Phase{{Cycles: 100, GPUScale: 101}, {}}
		}},
		{"gpu_scale NaN", func(sp *Spec) {
			sp.Phases = []Phase{{Cycles: 100, GPUScale: nan}, {}}
		}},
		{"gpu_scale without game", func(sp *Spec) {
			sp.Game = ""
			sp.Phases = []Phase{{Cycles: 100, GPUScale: 1.5}, {}}
		}},
		{"core change out of range", func(sp *Spec) {
			sp.Phases = []Phase{{Cycles: 100, Cores: []CoreChange{{Core: 5, SpecID: 429}}}, {}}
		}},
		{"core change unresolvable", func(sp *Spec) {
			sp.Phases = []Phase{{Cycles: 100, Cores: []CoreChange{{Core: 0}}}, {}}
		}},
		{"trace_path and inline trace", func(sp *Spec) {
			sp.TracePath = "x.jsonl"
			sp.Trace = "{}"
		}},
		{"corrupt inline trace", func(sp *Spec) { sp.Trace = "not json\n" }},
		{"trace drives more cores than spec", func(sp *Spec) {
			sp.Trace = `{"v":2,"cores":2}` + "\n" +
				`{"t":"cpu","core":0,"addr":64}` + "\n" +
				`{"t":"cpu","core":1,"addr":64}` + "\n"
		}},
		{"trace frames without game", func(sp *Spec) {
			sp.Game = ""
			sp.Trace = `{"v":2,"cores":1}` + "\n" +
				`{"t":"cpu","core":0,"addr":64}` + "\n" +
				`{"t":"gpu","scale":1}` + "\n"
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var sp *Spec
			if tc.mut != nil {
				sp = base()
				tc.mut(sp)
			}
			if err := sp.Validate(); err == nil {
				t.Fatalf("Validate accepted %q", tc.name)
			}
		})
	}
}

// TestParseSpecStrict: a typo in a scenario file is an error, not a
// silently ignored field.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"version":1,"game":"DOOM3","gpu_sclae":2}`)); err == nil {
		t.Fatal("ParseSpec accepted an unknown field")
	}
	sp, err := ParseSpec([]byte(`{"version":1,"game":"DOOM3"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

// writeTempTrace materializes a small capture on disk for the
// TracePath flows.
func writeTempTrace(t *testing.T, cores int, frames []float64) string {
	t.Helper()
	tr := &tracev2.Trace{Header: tracev2.Header{V: tracev2.Version, Cores: cores}, Frames: frames}
	for c := 0; c < cores; c++ {
		var ops []trace.Op
		for i := 0; i < 32; i++ {
			ops = append(ops, trace.Op{NonMem: 3 + (i+c)%7, Addr: uint64(i * 64), Write: (i+c)%5 == 0})
		}
		tr.CPU = append(tr.CPU, ops)
	}
	var buf bytes.Buffer
	if err := tracev2.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestInlineMakesSpecSelfContained: Inline swaps the path reference
// for content, after which the spec no longer needs this filesystem.
func TestInlineMakesSpecSelfContained(t *testing.T) {
	path := writeTempTrace(t, 2, []float64{1.0, 1.3})
	sp := &Spec{
		Version:   SpecVersion,
		Game:      "DOOM3",
		Cores:     []CoreSpec{{SpecID: 429}, {SpecID: 462}},
		TracePath: path,
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Inline(); err != nil {
		t.Fatal(err)
	}
	if sp.TracePath != "" || sp.Trace == "" {
		t.Fatalf("Inline left TracePath=%q, len(Trace)=%d", sp.TracePath, len(sp.Trace))
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inlining twice is a no-op.
	before := sp.Digest()
	if err := sp.Inline(); err != nil {
		t.Fatal(err)
	}
	if sp.Digest() != before {
		t.Fatal("second Inline changed the spec")
	}
}

// TestTraceReplayDeterminism: a replayed capture drives the machine
// identically on every run, whether referenced by path or inlined.
func TestTraceReplayDeterminism(t *testing.T) {
	path := writeTempTrace(t, 2, []float64{1.0, 1.4, 0.8})
	sp := &Spec{
		Version:   SpecVersion,
		Game:      "DOOM3",
		Cores:     []CoreSpec{{SpecID: 429}, {SpecID: 462}},
		TracePath: path,
	}
	cfg := propCfg(sim.PolicyThrottleCPUPrio)

	byPath, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byPath, again) {
		t.Fatal("trace replay is not deterministic")
	}

	inlined := *sp
	if err := inlined.Inline(); err != nil {
		t.Fatal(err)
	}
	byContent, err := Run(cfg, &inlined)
	if err != nil {
		t.Fatal(err)
	}
	// The digests (and so the labels) differ — path vs content — but
	// the simulation they describe is the same.
	byContent.MixID, byPath.MixID = "", ""
	if !reflect.DeepEqual(byContent, byPath) {
		t.Fatal("inlined capture diverged from the path-referenced one")
	}
}

// TestBuildRejects covers the Build-time failures Validate cannot see:
// an unreadable TracePath and a capture/spec shape mismatch that only
// materializes on read.
func TestBuildRejects(t *testing.T) {
	cfg := propCfg(sim.PolicyBaseline)
	missing := &Spec{
		Version:   SpecVersion,
		Cores:     []CoreSpec{{SpecID: 429}},
		TracePath: filepath.Join(t.TempDir(), "absent.jsonl"),
	}
	if _, err := Build(cfg, missing); err == nil {
		t.Fatal("Build read a nonexistent trace")
	}

	path := writeTempTrace(t, 2, nil)
	narrow := &Spec{
		Version:   SpecVersion,
		Cores:     []CoreSpec{{SpecID: 429}}, // trace drives 2 cores
		TracePath: path,
	}
	if _, err := Build(cfg, narrow); err == nil {
		t.Fatal("Build accepted a capture wider than the spec")
	}
}

// TestPhaseBoundariesChangeBehavior is the engine's smoke-level sanity
// check: a scenario that throttles GPU work mid-run must end with
// different results than its phase-less prefix — the levers actually
// move the machine.
func TestPhaseBoundariesChangeBehavior(t *testing.T) {
	static := &Spec{
		Version: SpecVersion,
		Game:    "DOOM3",
		Cores:   []CoreSpec{{SpecID: 429}},
	}
	varying := &Spec{
		Version: SpecVersion,
		Game:    "DOOM3",
		Cores:   []CoreSpec{{SpecID: 429}},
		Phases: []Phase{
			{Name: "calm", Cycles: 20_000},
			{Name: "storm", GPUScale: 3.0, Cores: []CoreChange{{Core: 0, SpecID: 470}}},
		},
	}
	cfg := propCfg(sim.PolicyBaseline)
	a, err := Run(cfg, static)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, varying)
	if err != nil {
		t.Fatal(err)
	}
	a.MixID, b.MixID = "", ""
	if reflect.DeepEqual(a, b) {
		t.Fatal("phase transitions had no observable effect")
	}
}

// TestRunObsLabel pins the journal/report label format.
func TestRunObsLabel(t *testing.T) {
	sp := &Spec{Version: SpecVersion, Cores: []CoreSpec{{SpecID: 429}}}
	cfg := propCfg(sim.PolicyBaseline)
	r, err := Run(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("scn:%s", sp.Digest())
	if r.MixID != want {
		t.Fatalf("MixID %q, want %q", r.MixID, want)
	}
}
