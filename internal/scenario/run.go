package scenario

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/scenario/tracev2"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Build wires a validated spec into a runnable System over the base
// configuration: NumCPUs comes from the spec's core list, phase 0's
// settings are applied before the first tick, and — when a tracev2
// capture is attached — the replay sources and the GPU frame envelope
// replace the synthetic drivers for the cores and frames the capture
// covers. Later phases may still swap a replayed core back to a
// synthetic stream; the timeline always wins.
func Build(cfg sim.Config, sp *Spec) (*sim.System, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	tr, err := sp.loadTrace()
	if err != nil {
		return nil, err
	}

	var game *gpu.AppModel
	if sp.Game != "" {
		game = workloads.MustGame(sp.Game).Model(cfg.Scale, cfg.GPUFreqHz)
	} else {
		// No GPU: frame-based termination gates would never satisfy.
		cfg.WarmupFrames = 0
		cfg.MinFrames = 0
	}
	apps := make([]trace.Params, len(sp.Cores))
	for i, c := range sp.Cores {
		// Validate resolved every core already.
		apps[i], _ = c.resolve()
	}
	cfg.NumCPUs = len(apps)
	if sc := newSchedule(sp); sc != nil {
		cfg.Scenario = sc
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	s := sim.NewSystem(cfg, game, apps)
	if len(sp.Phases) > 0 {
		applyPhase(s, sp.Phases[0])
	}
	if tr != nil {
		for i := 0; i < tr.Header.Cores; i++ {
			s.Cores[i].SetSource(tr.CoreSource(i))
		}
		if s.GPU != nil {
			s.GPU.FrameScale = tr.FrameScaleFunc()
		}
	}
	return s, nil
}

// loadTrace materializes the spec's capture: inline content wins,
// else TracePath is read from disk. The parsed trace is cross-checked
// against the spec shape either way.
func (sp *Spec) loadTrace() (*tracev2.Trace, error) {
	content := sp.Trace
	if content == "" && sp.TracePath != "" {
		data, err := os.ReadFile(sp.TracePath)
		if err != nil {
			return nil, fmt.Errorf("scenario: %v", err)
		}
		content = string(data)
	}
	if content == "" {
		return nil, nil
	}
	tr, err := tracev2.Parse(strings.NewReader(content))
	if err != nil {
		return nil, err
	}
	if err := sp.checkTrace(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// Run executes the scenario to completion and returns the result,
// labeled "scn:<digest>" so reports and journals identify it.
func Run(cfg sim.Config, sp *Spec) (sim.Result, error) {
	return RunObs(cfg, sp, nil)
}

// RunObs is Run with an optional observability recorder attached.
func RunObs(cfg sim.Config, sp *Spec, rec *obs.Recorder) (sim.Result, error) {
	s, err := Build(cfg, sp)
	if err != nil {
		return sim.Result{}, err
	}
	s.AttachObs(rec)
	r := sim.Run(s)
	r.MixID = "scn:" + sp.Digest()
	return r, nil
}
