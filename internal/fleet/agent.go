package fleet

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/exp"
	"repro/internal/obs"
)

// Agent is the worker half of the lease protocol: it registers with
// the coordinator, polls for leases, executes each leased task through
// the node's runner while heartbeating, and reports the outcome with a
// typed failure class. Every coordinator-facing loop retries with
// client.Backoff, so an agent rides out coordinator restarts the same
// way a submitting client rides out hetsimd restarts.
type Agent struct {
	// Coordinator is the client bound to the coordinator's base URL
	// (its retry knobs shape the agent's backoff).
	Coordinator *client.Client

	// WorkerID is this node's stable identity across restarts.
	WorkerID string

	// URL is advisory — where this worker's own API listens.
	URL string

	// Slots is how many leases the agent works concurrently (default 1:
	// one hetsimd-grade node runs one simulation at full parallelism).
	Slots int

	// PollInterval paces lease polls when the queue is empty (default
	// 250ms; jittered by client.Backoff's half-to-full shape).
	PollInterval time.Duration

	// RunFunc executes one leased task (tests stub it; hetsimd installs
	// the daemon's runner.Do so leased runs share the local memo,
	// journal, and engine selection).
	RunFunc func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error)

	// Logf, when non-nil, receives lease lifecycle diagnostics.
	Logf func(format string, args ...any)

	mu          sync.Mutex
	held        map[string]context.CancelFunc // live leases → cancel for the running task
	leased      uint64                        // leases accepted (tests observe progress)
	staleGrants uint64                        // grants rejected for carrying a stale term
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Leased reports how many leases this agent has accepted.
func (a *Agent) Leased() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leased
}

// StaleGrants reports how many lease grants this agent refused because
// they carried a term older than the newest the agent had seen — work
// handed out by a deposed coordinator after a failover.
func (a *Agent) StaleGrants() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.staleGrants
}

// RegisterObs exposes the agent's fencing counters on a registry (the
// hetsimd daemon hangs them off its own /metricsz, so the chaos gate
// can assert zero stale grants were ever accepted — or even offered —
// on each worker).
func (a *Agent) RegisterObs(g *obs.Registry) {
	g.Counter("fleet_agent_leased", func() uint64 { return a.Leased() })
	g.Counter("fleet_agent_stale_grants", func() uint64 { return a.StaleGrants() })
	g.Gauge("fleet_agent_term", func() float64 {
		if a.Coordinator == nil {
			return 0
		}
		return float64(a.Coordinator.Term())
	})
}

// Run drives the agent until ctx ends. It returns ctx.Err(): a worker
// outliving its coordinator is normal (it keeps polling with backoff
// until the coordinator returns or the node is told to stop).
func (a *Agent) Run(ctx context.Context) error {
	if a.Coordinator == nil || a.WorkerID == "" || a.RunFunc == nil {
		return errors.New("fleet: agent needs Coordinator, WorkerID, and RunFunc")
	}
	slots := a.Slots
	if slots <= 0 {
		slots = 1
	}
	poll := a.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	a.mu.Lock()
	a.held = make(map[string]context.CancelFunc)
	a.mu.Unlock()

	a.register(ctx)

	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.slotLoop(ctx, poll)
		}()
	}
	wg.Wait()
	// Best-effort deregistration releases our leases immediately
	// instead of letting them time out on the coordinator.
	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _ = a.Coordinator.DoJSON(dctx, http.MethodDelete, "/fleet/v1/workers/"+a.WorkerID, nil, nil)
	return ctx.Err()
}

// register announces the worker, retrying until it lands or ctx ends.
// Registration is advisory (lease calls auto-register), so a failure
// after retries is logged, not fatal.
func (a *Agent) register(ctx context.Context) {
	req := RegisterRequest{Worker: a.WorkerID, URL: a.URL}
	for attempt := 0; attempt < a.Coordinator.MaxAttempts; attempt++ {
		code, err := a.Coordinator.DoJSON(ctx, http.MethodPost, "/fleet/v1/workers", req, &struct{}{})
		if err == nil && code == http.StatusOK {
			return
		}
		if ctx.Err() != nil {
			return
		}
		a.logf("fleet agent %s: register attempt %d failed (code=%d err=%v)", a.WorkerID, attempt+1, code, err)
		if sleepCtx(ctx, a.Coordinator.Backoff(attempt, 0)) != nil {
			return
		}
	}
}

// slotLoop is one lease slot: poll, execute, report, repeat.
func (a *Agent) slotLoop(ctx context.Context, poll time.Duration) {
	idleFails := 0
	for ctx.Err() == nil {
		var lease LeaseResponse
		req := LeaseRequest{Worker: a.WorkerID, Term: a.Coordinator.Term()}
		code, err := a.Coordinator.DoJSON(ctx, http.MethodPost, "/fleet/v1/lease", req, &lease)
		switch {
		case ctx.Err() != nil:
			return
		case err != nil || code != http.StatusOK:
			// Coordinator down, restarting, or fenced (the client
			// rejects stale-term responses and rotates): back off and
			// keep trying — an orphaned worker reattaches by itself.
			idleFails++
			if sleepCtx(ctx, a.Coordinator.Backoff(min(idleFails-1, 6), 0)) != nil {
				return
			}
			continue
		case lease.None || lease.Spec == nil:
			// Empty queue (or draining coordinator): idle politely on a
			// jittered poll interval.
			idleFails = 0
			d := poll
			if lease.Draining {
				d = 4 * poll
			}
			if sleepCtx(ctx, a.Coordinator.Backoff(0, d)) != nil {
				return
			}
			continue
		case lease.Term != 0 && lease.Term < a.Coordinator.Term():
			// Belt over the client's braces: a grant from an older term
			// than the newest this worker has seen is a deposed
			// coordinator handing out work it no longer owns. Executing
			// it risks the double-execution the fencing exists to
			// prevent; refuse and let that coordinator's lease rot.
			a.mu.Lock()
			a.staleGrants++
			a.mu.Unlock()
			a.logf("fleet agent %s: rejecting grant at stale term %d (newest %d)",
				a.WorkerID, lease.Term, a.Coordinator.Term())
			continue
		}
		idleFails = 0
		grants := append([]LeaseGrant{{Key: lease.Key, Spec: lease.Spec}}, lease.More...)
		a.mu.Lock()
		a.leased += uint64(len(grants))
		a.mu.Unlock()
		ttl := time.Duration(lease.TTLMS) * time.Millisecond
		if ttl <= 0 {
			ttl = 15 * time.Second
		}
		if len(grants) == 1 {
			a.execute(ctx, grants[0].Key, grants[0].Spec, ttl)
		} else {
			a.executeBatch(ctx, grants, ttl)
		}
	}
}

// executeBatch runs a multi-grant (twin-tier) lease. The tasks finish
// in microseconds each, so they run sequentially; a keeper heartbeat
// renews the grants still waiting their turn — the active grant's own
// heartbeat covers it — and a grant reported lost before it starts is
// skipped, since its result would be discarded as a duplicate.
func (a *Agent) executeBatch(ctx context.Context, grants []LeaseGrant, ttl time.Duration) {
	var mu sync.Mutex
	pending := make(map[string]bool, len(grants))
	lost := make(map[string]bool)
	for _, g := range grants[1:] {
		pending[g.Key] = true
	}
	kctx, kcancel := context.WithCancel(ctx)
	defer kcancel()
	go func() {
		interval := ttl / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-kctx.Done():
				return
			case <-t.C:
			}
			mu.Lock()
			keys := make([]string, 0, len(pending))
			for k := range pending {
				keys = append(keys, k)
			}
			mu.Unlock()
			if len(keys) == 0 {
				return
			}
			var resp RenewResponse
			req := RenewRequest{Worker: a.WorkerID, Keys: keys, Term: a.Coordinator.Term()}
			code, err := a.Coordinator.DoJSON(kctx, http.MethodPost, "/fleet/v1/renew", req, &resp)
			if err != nil || code != http.StatusOK {
				continue // a missed renew proves nothing; same contract as heartbeat
			}
			mu.Lock()
			for _, k := range resp.Lost {
				if pending[k] {
					lost[k] = true
					delete(pending, k)
				}
			}
			mu.Unlock()
		}
	}()
	for _, g := range grants {
		mu.Lock()
		skip := lost[g.Key]
		delete(pending, g.Key)
		mu.Unlock()
		if skip {
			a.logf("fleet agent %s: batched lease %s lost before start, skipping", a.WorkerID, g.Key)
			continue
		}
		if ctx.Err() != nil {
			return
		}
		a.execute(ctx, g.Key, g.Spec, ttl)
	}
}

// execute runs one leased task under heartbeat and reports the outcome.
func (a *Agent) execute(ctx context.Context, key string, spec *exp.TaskSpec, ttl time.Duration) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	a.mu.Lock()
	a.held[key] = cancel
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.held, key)
		a.mu.Unlock()
	}()

	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go a.heartbeat(runCtx, key, ttl/3, lost, hbDone)
	go func() {
		// A confirmed loss cancels the run: its result would be
		// discarded as a duplicate, so finishing it is pure waste.
		select {
		case <-lost:
			cancel()
		case <-runCtx.Done():
		}
	}()

	a.logf("fleet agent %s: leased %s (ttl %v)", a.WorkerID, key, ttl)
	res, err := a.RunFunc(runCtx, *spec)
	cancel() // stop the heartbeat before reporting
	<-hbDone

	select {
	case <-lost:
		// The lease was stolen or the coordinator forgot us; the result
		// would be discarded as a duplicate, and a failure here is an
		// artifact of our own cancellation. Report nothing.
		a.logf("fleet agent %s: lease %s lost, dropping outcome", a.WorkerID, key)
		return
	default:
	}
	if ctx.Err() != nil && err != nil {
		// Shutting down mid-run: the coordinator will expire the lease
		// and re-grant; reporting a transient failure now would race
		// our own deregistration.
		return
	}

	report := CompleteRequest{Worker: a.WorkerID, Key: key}
	if err == nil {
		report.Result = &res
	} else {
		report.ErrMsg = err.Error()
		report.Class = classify(runCtx, err)
		var re *exp.RunError
		if errors.As(err, &re) {
			report.Stack = re.Stack
		}
	}
	a.report(ctx, report)
}

// heartbeat renews the lease every interval until runCtx ends; a renew
// that names key as lost closes lost, which cancels the run and
// suppresses its outcome.
func (a *Agent) heartbeat(runCtx context.Context, key string, interval time.Duration, lost chan<- struct{}, done chan<- struct{}) {
	defer close(done)
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-runCtx.Done():
			return
		case <-t.C:
		}
		var resp RenewResponse
		req := RenewRequest{Worker: a.WorkerID, Keys: []string{key}, Term: a.Coordinator.Term()}
		code, err := a.Coordinator.DoJSON(runCtx, http.MethodPost, "/fleet/v1/renew", req, &resp)
		if err != nil || code != http.StatusOK {
			// A missed heartbeat is not a lost lease: the coordinator
			// may be restarting, and resume re-arms our lease. Keep
			// renewing until the run ends or the loss is confirmed.
			continue
		}
		for _, k := range resp.Lost {
			if k == key {
				close(lost)
				return
			}
		}
	}
}

// report delivers the completion, retrying with backoff; completions
// are idempotent coordinator-side, so double delivery is harmless —
// including the failover replay: a report bounced off a deposed
// coordinator (StaleTerm) rotates the client and lands on the
// promoted primary, whose content-addressed store makes the second
// arrival a no-op at worst.
func (a *Agent) report(ctx context.Context, req CompleteRequest) {
	for attempt := 0; attempt < a.Coordinator.MaxAttempts; attempt++ {
		req.Term = a.Coordinator.Term()
		var resp CompleteResponse
		code, err := a.Coordinator.DoJSON(ctx, http.MethodPost, "/fleet/v1/complete", req, &resp)
		if err == nil && code == http.StatusOK && resp.StaleTerm {
			a.logf("fleet agent %s: complete %s refused by deposed coordinator, rotating", a.WorkerID, req.Key)
			a.Coordinator.Rotate()
			err = errors.New("completion refused: stale coordinator term")
		}
		if err == nil && code == http.StatusOK {
			if resp.Duplicate {
				a.logf("fleet agent %s: %s was already complete (store hit)", a.WorkerID, req.Key)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		a.logf("fleet agent %s: complete %s attempt %d failed (code=%d err=%v)", a.WorkerID, req.Key, attempt+1, code, err)
		if sleepCtx(ctx, a.Coordinator.Backoff(attempt, 0)) != nil {
			return
		}
	}
	a.logf("fleet agent %s: gave up reporting %s; lease will expire", a.WorkerID, req.Key)
}

// classify maps a run failure to its wire class: a recovered panic is
// ClassPanic (poisons this worker for the task), a cancellation or
// deadline is ClassTransient (retry elsewhere, no prejudice), anything
// else — validation deep in the run, malformed scenario — is
// ClassPermanent.
func classify(runCtx context.Context, err error) string {
	var re *exp.RunError
	if errors.As(err, &re) && re.Stack != "" {
		return ClassPanic
	}
	if runCtx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassTransient
	}
	return ClassPermanent
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
