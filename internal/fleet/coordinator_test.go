package fleet

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/twin"
)

// fakeClock is a mutable test clock threaded through Config.Now.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func testCoordinator(t *testing.T, mutate func(*Config)) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg := Config{LeaseTTL: 10 * time.Second, Now: clk.Now}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), clk
}

func mustAdmit(t *testing.T, c *Coordinator, spec exp.TaskSpec) string {
	t.Helper()
	resp, code := c.Admit(spec)
	if code != 202 && code != 200 {
		t.Fatalf("admit %s: code %d (%s)", spec.Key(), code, resp.Error)
	}
	return resp.Key
}

func mustConserve(t *testing.T, c *Coordinator) {
	t.Helper()
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func okResult() *exp.TaskResult { return &exp.TaskResult{IPC: 1.25} }

func TestLeaseGrantCompleteAndStoreHit(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	key := mustAdmit(t, c, exp.CPUTaskSpec(470))

	lease := c.Lease("w1")
	if lease.None || lease.Key != key || lease.Spec == nil || lease.Spec.SpecID != 470 {
		t.Fatalf("lease = %+v, want grant of %s", lease, key)
	}
	if lease.TTLMS != (10 * time.Second).Milliseconds() {
		t.Fatalf("lease TTL %dms, want 10000", lease.TTLMS)
	}
	// Queue empty now.
	if l2 := c.Lease("w2"); !l2.None {
		t.Fatalf("second lease granted %q from an empty queue", l2.Key)
	}

	cr := c.Complete(CompleteRequest{Worker: "w1", Key: key, Result: okResult()})
	if !cr.Accepted || cr.Duplicate {
		t.Fatalf("complete = %+v", cr)
	}
	mustConserve(t, c)

	// Resubmission of a completed key is a store hit, answered done.
	resp, code := c.Admit(exp.CPUTaskSpec(470))
	if code != 200 || resp.Status != server.StatusDone {
		t.Fatalf("resubmit: code %d status %q", code, resp.Status)
	}
	// Duplicate completion (a racing worker) is acknowledged, discarded.
	dup := c.Complete(CompleteRequest{Worker: "w2", Key: key, Result: &exp.TaskResult{IPC: 99}})
	if !dup.Accepted || !dup.Duplicate {
		t.Fatalf("duplicate complete = %+v", dup)
	}
	cnt := c.Counters()
	if cnt["fleet_store_hits"] != 2 {
		t.Fatalf("store hits = %v, want 2 (resubmit + duplicate)", cnt["fleet_store_hits"])
	}
	if cnt["fleet_leases_granted"] != 1 || cnt["fleet_grants_completed"] != 1 {
		t.Fatalf("grant counters = %+v", cnt)
	}
	status, _, res, _, ok := c.state(key)
	if !ok || status != server.StatusDone || res.IPC != 1.25 {
		t.Fatalf("state = %q %v %v; first writer must win", status, res, ok)
	}
	mustConserve(t, c)
}

func TestLeaseExpiryStealsToNextWorker(t *testing.T) {
	c, clk := testCoordinator(t, nil)
	key := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyBaseline))

	if l := c.Lease("w1"); l.None || l.Key != key {
		t.Fatalf("grant to w1 = %+v", l)
	}
	// Heartbeats keep the lease alive past its original deadline.
	clk.Advance(6 * time.Second)
	if r := c.Renew("w1", []string{key}); len(r.Lost) != 0 {
		t.Fatalf("renew lost %v", r.Lost)
	}
	clk.Advance(6 * time.Second)
	if l := c.Lease("w2"); !l.None {
		t.Fatalf("renewed lease was stolen: %+v", l)
	}

	// Silence for a full TTL expires it; the next poller steals it.
	clk.Advance(11 * time.Second)
	steal := c.Lease("w2")
	if steal.None || steal.Key != key {
		t.Fatalf("steal = %+v, want %s", steal, key)
	}
	cnt := c.Counters()
	if cnt["fleet_leases_expired"] != 1 || cnt["fleet_tasks_stolen"] != 1 {
		t.Fatalf("expired=%v stolen=%v, want 1/1", cnt["fleet_leases_expired"], cnt["fleet_tasks_stolen"])
	}
	// The displaced worker's renew now reports the loss.
	if r := c.Renew("w1", []string{key}); len(r.Lost) != 1 || r.Lost[0] != key {
		t.Fatalf("w1 renew = %+v, want lost %s", r, key)
	}
	// w1's late completion still lands (first writer), displacing w2.
	if cr := c.Complete(CompleteRequest{Worker: "w1", Key: key, Result: okResult()}); !cr.Accepted || cr.Duplicate {
		t.Fatalf("late complete = %+v", cr)
	}
	cnt = c.Counters()
	if cnt["fleet_leases_expired"] != 2 { // w2's displaced grant
		t.Fatalf("expired = %v, want 2 after displacement", cnt["fleet_leases_expired"])
	}
	if cnt["fleet_leases_inflight"] != 0 {
		t.Fatalf("inflight = %v, want 0", cnt["fleet_leases_inflight"])
	}
	mustConserve(t, c)
}

func TestFailureClassification(t *testing.T) {
	c, _ := testCoordinator(t, func(cfg *Config) { cfg.QuarantineThreshold = 2 })
	key := mustAdmit(t, c, exp.GPUTaskSpec("DOOM3"))

	// Transient: re-enqueued, no poison.
	c.Lease("w1")
	c.Complete(CompleteRequest{Worker: "w1", Key: key, ErrMsg: "interrupted", Class: ClassTransient})
	if st, _, _, _, _ := c.state(key); st != server.StatusQueued {
		t.Fatalf("after transient: %q, want queued", st)
	}

	// First panic: poisoned for w1, still retryable.
	c.Lease("w1")
	c.Complete(CompleteRequest{Worker: "w1", Key: key, ErrMsg: "boom", Stack: "goroutine 1 [running]", Class: ClassPanic})
	if st, _, _, _, _ := c.state(key); st != server.StatusQueued {
		t.Fatalf("after first panic: %q, want queued", st)
	}
	// Same worker panicking again proves nothing new — still one
	// distinct worker, still retryable.
	c.Lease("w1")
	c.Complete(CompleteRequest{Worker: "w1", Key: key, ErrMsg: "boom", Stack: "goroutine 1 [running]", Class: ClassPanic})
	if st, _, _, _, _ := c.state(key); st != server.StatusQueued {
		t.Fatalf("after repeat panic on one worker: %q, want queued", st)
	}
	// A second distinct worker panicking crosses the threshold.
	c.Lease("w2")
	c.Complete(CompleteRequest{Worker: "w2", Key: key, ErrMsg: "boom", Stack: "goroutine 7 [running]", Class: ClassPanic})
	st, errMsg, _, _, _ := c.state(key)
	if st != server.StatusFailed {
		t.Fatalf("after second distinct panic: %q, want failed", st)
	}
	if !strings.Contains(errMsg, "goroutine 7") {
		t.Fatalf("quarantine message lost the stack: %q", errMsg)
	}
	cnt := c.Counters()
	if cnt["fleet_quarantined"] != 1 || cnt["fleet_grants_failed"] != 4 {
		t.Fatalf("quarantined=%v failed=%v", cnt["fleet_quarantined"], cnt["fleet_grants_failed"])
	}
	mustConserve(t, c)

	// Permanent failures skip the voting entirely.
	key2 := mustAdmit(t, c, exp.CPUTaskSpec(462))
	c.Lease("w3")
	c.Complete(CompleteRequest{Worker: "w3", Key: key2, ErrMsg: "bad scenario", Class: ClassPermanent})
	if st, _, _, _, _ := c.state(key2); st != server.StatusFailed {
		t.Fatalf("after permanent: %q, want failed", st)
	}
	mustConserve(t, c)
}

func TestMaxAttemptsBackstop(t *testing.T) {
	c, clk := testCoordinator(t, func(cfg *Config) { cfg.MaxAttempts = 3 })
	key := mustAdmit(t, c, exp.CPUTaskSpec(433))
	// Grant and silently expire three times: a worker black hole.
	for i := 0; i < 3; i++ {
		if l := c.Lease("w1"); l.None {
			t.Fatalf("grant %d refused", i)
		}
		clk.Advance(11 * time.Second)
	}
	if l := c.Lease("w1"); !l.None {
		t.Fatalf("fourth grant handed out %q, want quarantine", l.Key)
	}
	if st, errMsg, _, _, _ := c.state(key); st != server.StatusFailed || !strings.Contains(errMsg, "gave up") {
		t.Fatalf("backstop state = %q %q", st, errMsg)
	}
	mustConserve(t, c)
}

func TestDeregisterReleasesLeases(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	key := mustAdmit(t, c, exp.CPUTaskSpec(470))
	c.Lease("w1")
	c.Deregister("w1")
	// No clock advance needed: the lease was released immediately.
	if l := c.Lease("w2"); l.None || l.Key != key {
		t.Fatalf("post-deregister lease = %+v", l)
	}
	cnt := c.Counters()
	if cnt["fleet_leases_expired"] != 1 || cnt["fleet_tasks_stolen"] != 1 {
		t.Fatalf("expired=%v stolen=%v", cnt["fleet_leases_expired"], cnt["fleet_tasks_stolen"])
	}
	mustConserve(t, c)
}

func TestDrainStopsAdmissionAndGrants(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	mustAdmit(t, c, exp.CPUTaskSpec(470))
	key2 := mustAdmit(t, c, exp.CPUTaskSpec(462))
	lease := c.Lease("w1") // one in flight

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		queued, inflight := c.Drain(context.Background())
		if queued != 1 || inflight != 0 {
			t.Errorf("drain = (%d queued, %d inflight), want (1, 0)", queued, inflight)
		}
	}()

	// Draining: no new admissions, no new grants, completions accepted.
	deadline := time.Now().Add(2 * time.Second)
	for !c.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, code := c.Admit(exp.CPUTaskSpec(401)); code != 503 {
		t.Fatalf("admission while draining: code %d, want 503", code)
	}
	if l := c.Lease("w2"); !l.Draining {
		t.Fatalf("lease while draining = %+v, want Draining", l)
	}
	_ = key2
	if cr := c.Complete(CompleteRequest{Worker: "w1", Key: lease.Key, Result: okResult()}); !cr.Accepted {
		t.Fatalf("complete while draining = %+v", cr)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never returned after inflight hit zero")
	}
	mustConserve(t, c)
}

// TestCountersMonotoneAndConserved drives a mixed lifecycle and checks,
// after every step, that every fleet counter is non-decreasing and the
// grant conservation law holds (satellite 6).
func TestCountersMonotoneAndConserved(t *testing.T) {
	c, clk := testCoordinator(t, func(cfg *Config) { cfg.QuarantineThreshold = 2 })
	counterNames := []string{
		"fleet_submissions", "fleet_store_hits", "fleet_shed",
		"fleet_leases_granted", "fleet_leases_renewed", "fleet_leases_expired",
		"fleet_tasks_stolen", "fleet_grants_completed", "fleet_grants_failed",
		"fleet_tasks_completed", "fleet_quarantined",
	}
	prev := c.Counters()
	check := func(step string) {
		t.Helper()
		cur := c.Counters()
		for _, name := range counterNames {
			if cur[name] < prev[name] {
				t.Fatalf("%s: counter %s went backwards (%v -> %v)", step, name, prev[name], cur[name])
			}
		}
		if err := c.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		prev = cur
	}

	keys := []string{
		mustAdmit(t, c, exp.CPUTaskSpec(470)),
		mustAdmit(t, c, exp.CPUTaskSpec(462)),
		mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyBaseline)),
		mustAdmit(t, c, exp.GPUTaskSpec("DOOM3")),
	}
	check("admit")

	l1, l2 := c.Lease("w1"), c.Lease("w2")
	check("grant")
	c.Renew("w1", []string{l1.Key})
	check("renew")
	c.Complete(CompleteRequest{Worker: "w1", Key: l1.Key, Result: okResult()})
	check("complete")
	clk.Advance(11 * time.Second) // expire w2's lease
	c.Lease("w3")                 // steals l2's task (or takes next)
	check("steal")
	c.Complete(CompleteRequest{Worker: "w2", Key: l2.Key, Result: okResult()}) // late, displaced or stale
	check("late-complete")
	c.Lease("w1")
	c.Complete(CompleteRequest{Worker: "w1", Key: keys[2], ErrMsg: "boom", Stack: "s", Class: ClassPanic})
	check("panic-1")
	c.Lease("w2")
	c.Complete(CompleteRequest{Worker: "w2", Key: keys[2], ErrMsg: "boom", Stack: "s", Class: ClassPanic})
	check("panic-2-quarantine")
	c.Admit(exp.CPUTaskSpec(470)) // store hit
	check("store-hit")
	_ = keys
}

func TestReplayRebuildsFleetState(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "fleet.jsonl")
	jnl, _, _, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c1 := New(Config{LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: jnl})

	doneKey := mustAdmit(t, c1, exp.CPUTaskSpec(470))
	leasedKey := mustAdmit(t, c1, exp.MixTaskSpec("M1", sim.PolicyBaseline))
	pendingKey := mustAdmit(t, c1, exp.GPUTaskSpec("DOOM3"))
	poisonKey := mustAdmit(t, c1, exp.CPUTaskSpec(462))

	if l := c1.Lease("w1"); l.Key != doneKey {
		t.Fatalf("setup grant = %+v", l)
	}
	c1.Complete(CompleteRequest{Worker: "w1", Key: doneKey, Result: okResult()})
	if l := c1.Lease("w2"); l.Key != leasedKey {
		t.Fatalf("setup grant 2 = %+v", l)
	}
	if l := c1.Lease("w3"); l.Key != pendingKey {
		t.Fatalf("setup grant 3 = %+v", l)
	}
	if l := c1.Lease("w1"); l.Key != poisonKey {
		t.Fatalf("setup grant 4 = %+v", l)
	}
	c1.Complete(CompleteRequest{Worker: "w1", Key: poisonKey, ErrMsg: "bad", Class: ClassPermanent})
	// Crash now: doneKey completed, poisonKey quarantined, leasedKey
	// held by w2, pendingKey held by w3 (who will die with the crash).
	jnl.Close()

	// "Restart": reopen the journal and replay into a fresh coordinator.
	jnl2, recs, _, err := exp.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	c2 := New(Config{LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: jnl2})
	stats := c2.Replay(recs)
	if stats.Completed != 1 || stats.Quarantined != 1 || stats.Leased == 0 {
		t.Fatalf("replay stats = %+v", stats)
	}
	if stats.Unrecoverable != 0 {
		t.Fatalf("replay lost %d tasks", stats.Unrecoverable)
	}

	// Completed key: served from the store, never re-leased.
	if st, _, res, _, ok := c2.state(doneKey); !ok || st != server.StatusDone || res.IPC != 1.25 {
		t.Fatalf("replayed done key: %q %v %v", st, res, ok)
	}
	// Quarantined key: still failed.
	if st, msg, _, _, _ := c2.state(poisonKey); st != server.StatusFailed || !strings.Contains(msg, "bad") {
		t.Fatalf("replayed quarantined key: %q %q", st, msg)
	}
	// The re-armed lease belongs to its last holder: w2's renew holds it.
	if r := c2.Renew("w2", []string{leasedKey}); len(r.Lost) != 0 {
		t.Fatalf("re-armed lease not renewable by holder: %+v", r)
	}
	// Its holder can complete it without a new grant.
	if cr := c2.Complete(CompleteRequest{Worker: "w2", Key: leasedKey, Result: okResult()}); !cr.Accepted || cr.Duplicate {
		t.Fatalf("re-armed complete = %+v", cr)
	}
	mustConserve(t, c2)

	// w3 died with the crash: its re-armed lease never renews, expires,
	// and pendingKey is stolen by the next poller. The completed keys
	// never come back — zero recompute.
	clk.Advance(11 * time.Second)
	granted := map[string]bool{}
	for {
		l := c2.Lease("w9")
		if l.None {
			break
		}
		granted[l.Key] = true
	}
	if granted[doneKey] || granted[leasedKey] {
		t.Fatalf("completed key re-leased after replay (recompute): %v", granted)
	}
	if !granted[pendingKey] {
		t.Fatalf("pending key not re-leased after replay (got %v)", granted)
	}
	if c2.Counters()["fleet_tasks_stolen"] == 0 {
		t.Fatal("steal of the dead worker's lease was not counted")
	}
	mustConserve(t, c2)
}

func TestReplayUnrecoverableScenarioLease(t *testing.T) {
	// A lease record for a scenario key with no admission record cannot
	// be turned back into a spec (the digest is one-way); replay counts
	// it instead of dropping it silently.
	c, _ := testCoordinator(t, nil)
	stats := c.Replay([]exp.Record{{Kind: exp.KindLeased, Key: "scn/deadbeef/2", Worker: "w1"}})
	if stats.Unrecoverable != 1 {
		t.Fatalf("stats = %+v, want 1 unrecoverable", stats)
	}
	// A mix lease without admission is reconstructible from its key.
	stats = c.Replay([]exp.Record{{Kind: exp.KindLeased, Key: "mix/M1/0", Worker: "w1"}})
	if stats.Leased != 1 || stats.Unrecoverable != 0 {
		t.Fatalf("stats = %+v, want 1 leased", stats)
	}
}

func TestQueueShedAndValidation(t *testing.T) {
	c, _ := testCoordinator(t, func(cfg *Config) { cfg.QueueDepth = 1 })
	if _, code := c.Admit(exp.TaskSpec{Kind: "nope"}); code != 400 {
		t.Fatalf("bad spec admitted: code %d", code)
	}
	mustAdmit(t, c, exp.CPUTaskSpec(470))
	resp, code := c.Admit(exp.CPUTaskSpec(462))
	if code != 429 || resp.RetryAfterMS <= 0 {
		t.Fatalf("overflow: code %d resp %+v, want 429 with hint", code, resp)
	}
	if c.Counters()["fleet_shed"] != 1 {
		t.Fatalf("shed = %v", c.Counters()["fleet_shed"])
	}
	// Shed keys were not admitted: unknown to status.
	if _, _, _, _, ok := c.state("cpu/462"); ok {
		t.Fatal("shed key has state")
	}
}

// twinMixSpec builds a twin-tier mix task (key "twin/mix/<id>/<pol>").
func twinMixSpec(mixID string, p sim.Policy) exp.TaskSpec {
	spec := exp.MixTaskSpec(mixID, p)
	spec.Tier = exp.TierTwin
	return spec
}

// TestLeaseBatchingGrantsConsecutiveTwinTasks: with LeaseBatch set,
// one lease response carries consecutive twin-tier queue heads as
// extra grants — each a real lease in the ledger — and the batch stops
// at the first cycle-accurate task, which is itself never batched and
// never overtaken.
func TestLeaseBatchingGrantsConsecutiveTwinTasks(t *testing.T) {
	c, clk := testCoordinator(t, func(cfg *Config) { cfg.LeaseBatch = 3 })
	t0 := mustAdmit(t, c, twinMixSpec("M1", sim.PolicyBaseline))
	t1 := mustAdmit(t, c, twinMixSpec("M1", sim.PolicyThrottle))
	full := mustAdmit(t, c, exp.MixTaskSpec("M2", sim.PolicyBaseline))
	t2 := mustAdmit(t, c, twinMixSpec("M1", sim.PolicyHeLM))
	t3 := mustAdmit(t, c, twinMixSpec("M1", sim.PolicyCMBAL))

	l1 := c.Lease("w1")
	if l1.Key != t0 || len(l1.More) != 1 || l1.More[0].Key != t1 {
		t.Fatalf("batched lease = %+v, want %s + [%s] (stop at the full-tier head)", l1, t0, t1)
	}
	if l1.More[0].Spec == nil || l1.More[0].Spec.Tier != exp.TierTwin {
		t.Fatalf("batched grant lost its spec: %+v", l1.More)
	}
	mustConserve(t, c)

	// The cycle-accurate task is granted alone even with twins behind it.
	l2 := c.Lease("w2")
	if l2.Key != full || len(l2.More) != 0 {
		t.Fatalf("full-tier lease = %+v, want %s alone", l2, full)
	}
	l3 := c.Lease("w3")
	if l3.Key != t2 || len(l3.More) != 1 || l3.More[0].Key != t3 {
		t.Fatalf("tail lease = %+v, want %s + [%s]", l3, t2, t3)
	}
	if cnt := c.Counters(); cnt["fleet_leases_granted"] != 5 {
		t.Fatalf("granted = %v, want 5 (every batched grant is a lease)", cnt["fleet_leases_granted"])
	}
	mustConserve(t, c)

	// Both halves of w1's batch renew by key and survive the deadline.
	if resp := c.Renew("w1", []string{t0, t1}); len(resp.Lost) != 0 {
		t.Fatalf("renew lost %v", resp.Lost)
	}
	clk.Advance(6 * time.Second)
	if resp := c.Renew("w1", []string{t0, t1}); len(resp.Lost) != 0 {
		t.Fatalf("renew after advance lost %v", resp.Lost)
	}
	clk.Advance(6 * time.Second) // w2 and w3 never renewed: their grants expire

	pred := &twin.Prediction{FPS: 40, MeanIPC: 1.1, Confidence: 0.9}
	for _, key := range []string{t0, t1} {
		cr := c.Complete(CompleteRequest{Worker: "w1", Key: key,
			Result: &exp.TaskResult{Tier: exp.TierTwin, Prediction: pred}})
		if !cr.Accepted || cr.Duplicate {
			t.Fatalf("complete %s = %+v", key, cr)
		}
	}
	mustConserve(t, c)

	// Expired batched grants re-enqueue for stealing like any lease.
	if l4 := c.Lease("w4"); l4.None {
		t.Fatal("expired tasks must re-enqueue for stealing")
	}
	mustConserve(t, c)
}

// TestReplayRestoresTwinCompletions: twin-kind completion records
// replay into the store under the twin task key with tier provenance
// intact — a prediction stays TierTwin, an escalation TierFull.
func TestReplayRestoresTwinCompletions(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	pred := &twin.Prediction{FPS: 40, Confidence: 0.9}
	r := &sim.Result{GPUFPS: 42}
	stats := c.Replay([]exp.Record{
		{Kind: exp.KindQueued, Key: "twin/mix/M1/0"},
		{Kind: exp.KindTwin, Key: "mix/M1/0", Twin: pred},
		{Kind: exp.KindTwin, Key: "mix/M2/0", Twin: pred, Result: r},
		{Kind: exp.KindTwin, Key: "mix/M3/0"}, // payload-less: ignored
	})
	if stats.Completed != 2 || stats.Ignored != 1 {
		t.Fatalf("stats = %+v, want 2 completed, 1 ignored", stats)
	}
	status, _, res, _, ok := c.state("twin/mix/M1/0")
	if !ok || status != server.StatusDone || res.Tier != exp.TierTwin || res.Prediction == nil {
		t.Fatalf("twin key state = %q tier=%q pred=%v", status, res.Tier, res.Prediction)
	}
	status, _, res, _, ok = c.state("twin/mix/M2/0")
	if !ok || status != server.StatusDone || res.Tier != exp.TierFull || res.Result == nil {
		t.Fatalf("escalated key state = %q tier=%q result=%v", status, res.Tier, res.Result)
	}
}
