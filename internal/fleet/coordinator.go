package fleet

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
)

// task is one admitted key's fleet-side state. A task is queued (on the
// pending list), running (leased to exactly one worker, deadline
// armed), done (result in the store), or failed (quarantined). done is
// closed when the task resolves, waking long-poll waiters.
type task struct {
	spec   exp.TaskSpec
	key    string
	status string // server.StatusQueued/Running/Done/Failed

	worker     string    // current lease holder while running
	deadline   time.Time // lease expiry while running
	lastWorker string    // most recent holder ever; a re-grant elsewhere is a steal
	grants     int       // lifetime grant count (MaxAttempts backstop)
	poisoned   map[string]bool
	errMsg     string
	done       chan struct{}
}

// workerState is the registry entry for one node.
type workerState struct {
	url      string
	lastSeen time.Time
	leases   int
}

// Coordinator shards a campaign across registered workers. It serves
// the same public API as one hetsimd — submissions, status long-polls,
// and results look identical to clients — while dispatching the actual
// runs over the /fleet/v1 lease protocol.
type Coordinator struct {
	cfg     Config
	reg     obs.Registry
	started time.Time

	mu       sync.Mutex
	draining bool
	tasks    map[string]*task
	pending  []string // FIFO of queued keys (entries may be stale; grant skips non-queued)
	store    map[string]exp.TaskResult
	workers  map[string]*workerState

	// Epoch fencing (DESIGN.md §15). term is this incarnation's epoch,
	// journaled by OpenTerm and stamped on every response. deposed is
	// set the moment a newer term is observed — a promoted standby took
	// over — after which this coordinator refuses grants, admissions,
	// and completions so every participant rotates to the new primary.
	term    uint64
	deposed bool

	// famWorker memoizes which worker last completed each mix family —
	// the warm-runner affinity map. A worker that just ran mix/M7 holds
	// M7's decoded workload and twin frontier hot; granting it M7's
	// other policies skips that setup cost.
	famWorker map[string]string

	// Counters, all guarded by mu. The conservation law (checked by
	// TestCountersConserved and the chaos gate) is grant-scoped:
	//
	//	granted == grantsCompleted + expired + grantsFailed + inflight
	//
	// Every grant ends exactly one way: its holder completes it
	// (grantsCompleted), its holder reports failure (grantsFailed), or
	// the lease dies — by timeout, worker deregistration, or
	// displacement when another worker completes the key first (all
	// expired).
	submissions     uint64
	storeHits       uint64
	shed            uint64
	granted         uint64
	renewed         uint64
	expired         uint64
	stolen          uint64
	grantsCompleted uint64
	grantsFailed    uint64
	tasksCompleted  uint64
	quarantined     uint64
	inflight        uint64
	affinityHits    uint64 // grants whose family was warm on the grantee
	fenced          uint64 // requests refused because this coordinator is deposed
}

// New builds a coordinator. Pair with Replay (before serving) when
// resuming from a journal, and Start for background lease expiry.
func New(cfg Config) *Coordinator {
	cfg.fillDefaults()
	c := &Coordinator{
		cfg:       cfg,
		started:   cfg.Now(),
		tasks:     make(map[string]*task),
		store:     make(map[string]exp.TaskResult),
		workers:   make(map[string]*workerState),
		famWorker: make(map[string]string),
	}
	c.registerObs()
	return c
}

func (c *Coordinator) registerObs() {
	counter := func(name string, p *uint64) {
		c.reg.Counter(name, func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return *p
		})
	}
	counter("fleet_submissions", &c.submissions)
	counter("fleet_store_hits", &c.storeHits)
	counter("fleet_shed", &c.shed)
	counter("fleet_leases_granted", &c.granted)
	counter("fleet_leases_renewed", &c.renewed)
	counter("fleet_leases_expired", &c.expired)
	counter("fleet_tasks_stolen", &c.stolen)
	counter("fleet_grants_completed", &c.grantsCompleted)
	counter("fleet_grants_failed", &c.grantsFailed)
	counter("fleet_tasks_completed", &c.tasksCompleted)
	counter("fleet_quarantined", &c.quarantined)
	counter("fleet_affinity_hits", &c.affinityHits)
	counter("fleet_fenced_requests", &c.fenced)
	c.reg.Gauge("fleet_term", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.term)
	})
	c.reg.Gauge("fleet_deposed", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.deposed {
			return 1
		}
		return 0
	})
	c.reg.Gauge("fleet_leases_inflight", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.inflight)
	})
	c.reg.Gauge("fleet_workers", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	c.reg.Gauge("fleet_queue_depth", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.queueDepthLocked())
	})
	c.reg.Gauge("fleet_store_size", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.store))
	})
	if c.cfg.Journal != nil {
		c.cfg.Journal.RegisterObs(&c.reg)
	}
}

// queueDepthLocked counts genuinely queued tasks (the pending list may
// hold stale entries for keys that completed while waiting).
func (c *Coordinator) queueDepthLocked() int {
	n := 0
	for _, key := range c.pending {
		if t := c.tasks[key]; t != nil && t.status == server.StatusQueued {
			n++
		}
	}
	return n
}

// journalLocked appends under c.mu so journal order matches state
// transition order; append failures degrade resumability, never the
// fleet (same contract as Runner.journalAppend).
func (c *Coordinator) journalLocked(rec exp.Record) {
	if c.cfg.Journal == nil {
		return
	}
	_ = c.cfg.Journal.Append(rec)
}

// OpenTerm takes office: it bumps the coordinator's epoch past the
// highest term its journal replay saw and journals the new term record
// before any request is served at it. Fresh coordinators open term 1;
// a -resume opens maxTerm+1; a promoted standby opens maxTerm+1 over
// everything it replicated. Returns the new term.
func (c *Coordinator) OpenTerm() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.term++
	c.journalLocked(exp.Record{Kind: exp.KindTerm, Term: c.term, Worker: c.cfg.ID})
	return c.term
}

// Term returns the coordinator's current epoch (0 before OpenTerm).
func (c *Coordinator) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// ObserveTerm feeds a term seen in a participant's request (or an
// explicit fencing POST from a promoted standby). Observing a term
// newer than our own means another coordinator has taken office: this
// one deposes itself and from then on refuses grants, admissions, and
// completions so agents and clients rotate to the new primary. Returns
// true if this call deposed the coordinator.
func (c *Coordinator) ObserveTerm(term uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if term > c.term && !c.deposed {
		c.deposed = true
		return true
	}
	return false
}

// Deposed reports whether a newer coordinator incarnation has fenced
// this one.
func (c *Coordinator) Deposed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deposed
}

// countFenced increments the refused-while-deposed counter (the HTTP
// layer calls it when it bounces a request off a deposed coordinator).
func (c *Coordinator) countFenced() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fenced++
}

// completionRecord shapes a finished run's journal record exactly as
// exp.Runner would have journaled it — Kind is the task kind, Key the
// memo part, scenario specs attached — so one replayer handles worker
// and coordinator journals alike.
func completionRecord(t *task, res exp.TaskResult) exp.Record {
	kind, memo := splitTaskKey(t.key)
	rec := exp.Record{Kind: kind, Key: memo}
	switch kind {
	case exp.KindTwin:
		// Analytic-tier completion. The prediction is the payload; an
		// auto-tier escalation additionally carries its cycle-accurate
		// Result or IPC, and replay tells the tiers apart by which
		// payloads are present.
		rec.Twin = res.Prediction
		rec.Result = res.Result
		rec.IPC = res.IPC
	case exp.KindCPU:
		rec.IPC = res.IPC
	default:
		rec.Result = res.Result
	}
	if kind == exp.KindScenario {
		spec := t.spec
		rec.Spec = &spec
	}
	return rec
}

// splitTaskKey separates "mix/M7/2" into ("mix", "M7/2").
func splitTaskKey(key string) (kind, memo string) {
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1:]
}

// Admit validates and enqueues spec, or joins it to existing state.
// The returned code follows the hetsimd admission contract: 200 for a
// known/completed key, 202 for a fresh enqueue, 400 on validation,
// 429 when the queue is full, 503 while draining.
func (c *Coordinator) Admit(spec exp.TaskSpec) (server.StatusResponse, int) {
	key := spec.Key()
	if err := spec.Validate(); err != nil {
		return server.StatusResponse{Key: key, Error: err.Error()}, 400
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	c.submissions++

	if _, hit := c.store[key]; hit {
		c.storeHits++
		return server.StatusResponse{Key: key, Status: server.StatusDone}, 200
	}
	if t, ok := c.tasks[key]; ok {
		return server.StatusResponse{Key: key, Status: t.status, Error: t.errMsg}, 200
	}
	if c.draining {
		return server.StatusResponse{
			Key: key, Error: "coordinator draining",
			RetryAfterMS: c.cfg.ShedRetryAfter.Milliseconds(),
		}, 503
	}
	if c.queueDepthLocked() >= c.cfg.QueueDepth {
		c.shed++
		return server.StatusResponse{
			Key: key, Error: "queue full",
			RetryAfterMS: c.cfg.ShedRetryAfter.Milliseconds(),
		}, 429
	}

	t := &task{spec: spec, key: key, status: server.StatusQueued, done: make(chan struct{})}
	c.tasks[key] = t
	c.pending = append(c.pending, key)
	c.journalLocked(exp.Record{Kind: exp.KindQueued, Key: key, Spec: &t.spec})
	return server.StatusResponse{Key: key, Status: server.StatusQueued}, 202
}

// Register upserts a worker's registry entry. Workers are also
// auto-registered by any lease-protocol call, so registration is
// advisory (it carries the URL); what matters is that deregistration
// releases leases promptly instead of waiting out their TTL.
func (c *Coordinator) Register(workerID, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID, url)
}

func (c *Coordinator) touchWorkerLocked(workerID, url string) {
	w := c.workers[workerID]
	if w == nil {
		w = &workerState{}
		c.workers[workerID] = w
	}
	if url != "" {
		w.url = url
	}
	w.lastSeen = c.cfg.Now()
}

// Deregister removes a worker and releases its leases for immediate
// re-grant (counted as expired: the grants ended without completing).
func (c *Coordinator) Deregister(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, workerID)
	for _, t := range c.tasks {
		if t.status == server.StatusRunning && t.worker == workerID {
			c.releaseLocked(t)
		}
	}
}

// releaseLocked ends t's live lease without resolving the task: the
// grant is counted expired and the task re-enqueued for stealing.
func (c *Coordinator) releaseLocked(t *task) {
	c.expired++
	c.inflight--
	t.worker = ""
	t.status = server.StatusQueued
	c.pending = append(c.pending, t.key)
}

// expireLocked sweeps lease deadlines. It runs on every protocol entry
// point plus the Start ticker, so expiry latency is bounded by
// min(traffic, TTL/4) without a dedicated timer per lease.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, t := range c.tasks {
		if t.status == server.StatusRunning && now.After(t.deadline) {
			c.releaseLocked(t)
		}
	}
}

// Lease grants the oldest queued task to workerID, or reports none.
// When the grant is twin-tier and Config.LeaseBatch allows, further
// consecutive twin-tier tasks at the queue head ride along in More —
// each one a full lease in the ledger, sharing the response's TTL.
func (c *Coordinator) Lease(workerID string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.touchWorkerLocked(workerID, "")
	c.expireLocked(now)
	if c.draining || c.deposed {
		return LeaseResponse{None: true, Draining: true, Term: c.term}
	}
	first := c.grantOneLocked(workerID, now, false)
	if first == nil {
		return LeaseResponse{None: true, Term: c.term}
	}
	resp := LeaseResponse{Key: first.Key, Spec: first.Spec,
		TTLMS: c.cfg.LeaseTTL.Milliseconds(), Term: c.term}
	if first.Spec.Tier == exp.TierTwin {
		for len(resp.More) < c.cfg.LeaseBatch-1 {
			g := c.grantOneLocked(workerID, now, true)
			if g == nil {
				break
			}
			resp.More = append(resp.More, *g)
		}
	}
	return resp
}

// grantOneLocked pops and grants the oldest viable queued task —
// unless the asking worker has a warm mix family further up the queue
// (affinityPickLocked), in which case that task is granted instead and
// the head stays for the next poller. With twinOnly it stops — leaving
// the queue untouched — at the first viable task that is not
// twin-tier, so batching never reorders dispatch around a
// cycle-accurate run.
func (c *Coordinator) grantOneLocked(workerID string, now time.Time, twinOnly bool) *LeaseGrant {
	for len(c.pending) > 0 {
		key := c.pending[0]
		t := c.tasks[key]
		if t == nil || t.status != server.StatusQueued {
			c.pending = c.pending[1:]
			continue // stale entry: completed, quarantined, or re-leased already
		}
		if t.grants >= c.cfg.MaxAttempts {
			c.pending = c.pending[1:]
			c.quarantineLocked(t, workerID, fmt.Sprintf("gave up after %d grants without a completion", t.grants))
			continue
		}
		if twinOnly && t.spec.Tier != exp.TierTwin {
			return nil
		}
		if idx, hit := c.affinityPickLocked(workerID, t, twinOnly); idx > 0 {
			key = c.pending[idx]
			t = c.tasks[key]
			c.pending = append(c.pending[:idx], c.pending[idx+1:]...)
			c.affinityHits++
		} else {
			c.pending = c.pending[1:]
			if hit {
				c.affinityHits++
			}
		}
		t.grants++
		t.status = server.StatusRunning
		t.worker = workerID
		t.deadline = now.Add(c.cfg.LeaseTTL)
		c.granted++
		c.inflight++
		if w := c.workers[workerID]; w != nil {
			w.leases++
		}
		kind := exp.KindLeased
		if t.lastWorker != "" && t.lastWorker != workerID {
			c.stolen++
			kind = exp.KindStolen
		}
		t.lastWorker = workerID
		c.journalLocked(exp.Record{Kind: kind, Key: key, Worker: workerID})
		spec := t.spec
		return &LeaseGrant{Key: key, Spec: &spec}
	}
	return nil
}

// affinityPickLocked decides which queued task to grant workerID given
// that head (c.pending[0], already vetted) is the in-order choice. It
// returns the pending index to grant (0 = head) and whether the choice
// lands on a family the worker completed last (an affinity hit,
// counted by the caller). When the head's family is cold for this
// worker, a bounded scan looks ahead for the first viable task whose
// family is warm — the memo-reuse win outweighs the local reorder, and
// the skipped head is still the next in-order grant for every other
// poller. Batch continuations (twinOnly) never reorder.
func (c *Coordinator) affinityPickLocked(workerID string, head *task, twinOnly bool) (int, bool) {
	if c.cfg.AffinityScan <= 0 || twinOnly {
		return 0, false
	}
	if c.famWorker[head.spec.Family()] == workerID {
		return 0, true
	}
	scanned := 0
	for i := 1; i < len(c.pending) && scanned < c.cfg.AffinityScan; i++ {
		t := c.tasks[c.pending[i]]
		if t == nil || t.status != server.StatusQueued || t.grants >= c.cfg.MaxAttempts {
			continue // stale or backstop-bound entries are the head loop's business
		}
		scanned++
		if c.famWorker[t.spec.Family()] == workerID {
			return i, true
		}
	}
	return 0, false
}

// Renew extends the deadlines of the leases workerID still holds and
// reports the ones it lost.
func (c *Coordinator) Renew(workerID string, keys []string) RenewResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.touchWorkerLocked(workerID, "")
	c.expireLocked(now)
	var resp RenewResponse
	for _, key := range keys {
		t := c.tasks[key]
		if t != nil && t.status == server.StatusRunning && t.worker == workerID {
			t.deadline = now.Add(c.cfg.LeaseTTL)
			c.renewed++
			continue
		}
		resp.Lost = append(resp.Lost, key)
	}
	return resp
}

// Complete records one run outcome from a worker. Success installs the
// result in the content-addressed store (first writer wins; duplicates
// are store hits) and resolves the task; failure is classified and the
// task re-enqueued or quarantined.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, "")
	c.expireLocked(c.cfg.Now())

	if _, hit := c.store[req.Key]; hit {
		// The key already completed — this worker raced a steal or
		// recomputed after a lost lease. Its payload is discarded: the
		// store is first-writer-wins so every reader sees one result.
		c.storeHits++
		return CompleteResponse{Accepted: true, Duplicate: true}
	}
	t := c.tasks[req.Key]
	if t == nil {
		return CompleteResponse{} // unknown key: coordinator restarted without this task
	}

	if req.Result != nil {
		c.store[req.Key] = *req.Result
		c.tasksCompleted++
		c.famWorker[t.spec.Family()] = req.Worker
		if t.status == server.StatusRunning {
			c.inflight--
			if t.worker == req.Worker {
				c.grantsCompleted++
			} else {
				// A displaced holder is still running the key; its grant
				// ends as expired and its next renew reports the loss.
				c.expired++
			}
		}
		t.worker = ""
		t.status = server.StatusDone
		t.errMsg = ""
		close(t.done)
		c.journalLocked(completionRecord(t, *req.Result))
		return CompleteResponse{Accepted: true}
	}

	// Failure report. Only the current holder's failure ends a grant;
	// a stale report from an expired lease changes nothing.
	if t.status != server.StatusRunning || t.worker != req.Worker {
		return CompleteResponse{}
	}
	c.grantsFailed++
	c.inflight--
	t.worker = ""
	switch req.Class {
	case ClassPermanent:
		c.quarantineLocked(t, req.Worker, failureMessage(req))
	case ClassPanic:
		if t.poisoned == nil {
			t.poisoned = make(map[string]bool)
		}
		t.poisoned[req.Worker] = true
		if len(t.poisoned) >= c.cfg.QuarantineThreshold {
			c.quarantineLocked(t, req.Worker, failureMessage(req))
		} else {
			t.status = server.StatusQueued
			c.pending = append(c.pending, t.key)
		}
	default: // ClassTransient and anything unclassified: retry elsewhere
		t.status = server.StatusQueued
		c.pending = append(c.pending, t.key)
	}
	return CompleteResponse{Accepted: true}
}

func failureMessage(req CompleteRequest) string {
	msg := req.ErrMsg
	if msg == "" {
		msg = "unspecified failure"
	}
	if req.Stack != "" {
		msg += "\n" + req.Stack
	}
	return msg
}

// quarantineLocked resolves t as failed for good.
func (c *Coordinator) quarantineLocked(t *task, workerID, msg string) {
	t.status = server.StatusFailed
	t.errMsg = msg
	t.worker = ""
	c.quarantined++
	close(t.done)
	c.journalLocked(exp.Record{Kind: exp.KindQuarantined, Key: t.key, Worker: workerID, ErrMsg: msg})
}

// state snapshots one key's status for the HTTP layer.
func (c *Coordinator) state(key string) (status, errMsg string, res exp.TaskResult, done chan struct{}, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, hit := c.store[key]; hit {
		return server.StatusDone, "", r, nil, true
	}
	if t, found := c.tasks[key]; found {
		return t.status, t.errMsg, exp.TaskResult{}, t.done, true
	}
	return "", "", exp.TaskResult{}, nil, false
}

// Health reports the coordinator's identity and load in the same shape
// as a hetsimd node; Engine is "fleet" so wait-ready output names the
// node type.
func (c *Coordinator) Health() server.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return server.Health{
		Version:    server.Version,
		UptimeS:    c.cfg.Now().Sub(c.started).Seconds(),
		Engine:     "fleet",
		QueueDepth: c.queueDepthLocked(),
		Draining:   c.draining,
		Term:       c.term,
	}
}

// Workers snapshots the registry: worker id → held lease count, for
// the /fleet/v1/workers listing.
func (c *Coordinator) Workers() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.workers))
	for id := range c.workers {
		out[id] = 0
	}
	for _, t := range c.tasks {
		if t.status == server.StatusRunning {
			out[t.worker]++
		}
	}
	return out
}

// Start launches the background lease sweeper; it stops when ctx ends.
// Without it, expiry still happens on every protocol call — the ticker
// only bounds latency when all traffic stops (e.g. every worker died).
func (c *Coordinator) Start(ctx context.Context) {
	tick := c.cfg.LeaseTTL / 4
	if tick <= 0 {
		tick = time.Second
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.mu.Lock()
				c.expireLocked(c.cfg.Now())
				c.mu.Unlock()
			}
		}
	}()
}

// Drain stops admission and new grants, then waits (up to ctx) for
// in-flight leases to complete; completions are accepted throughout.
// Pending tasks stay journaled from admission, so a restart with
// -resume re-enqueues exactly the unfinished work. Returns the queued
// and still-in-flight counts at exit. Idempotent.
func (c *Coordinator) Drain(ctx context.Context) (queued, inflight int) {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	for {
		c.mu.Lock()
		c.expireLocked(c.cfg.Now())
		queued, inflight = c.queueDepthLocked(), int(c.inflight)
		c.mu.Unlock()
		if inflight == 0 {
			return queued, 0
		}
		select {
		case <-ctx.Done():
			return queued, inflight
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Draining reports whether Drain has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// ReplayStats accounts for what Replay reconstructed.
type ReplayStats struct {
	Completed     int    // keys restored straight into the store
	Quarantined   int    // keys restored as failed
	Pending       int    // keys re-enqueued
	Leased        int    // keys re-armed with a fresh lease for their last holder
	Unrecoverable int    // keys with no spec and an unparseable key (lost)
	Ignored       int    // records of foreign kinds (e.g. sweep "cell")
	Duplicates    int    // repeated completions for an already-resolved key (first wins)
	Orphans       int    // completions for keys with no admission or lease record (adopted)
	StaleTerms    int    // term records at or below an already-seen term
	Term          uint64 // highest coordinator term seen in the journal
}

// replayKeyState is one key's strongest-record-wins accumulation.
type replayKeyState struct {
	spec       *exp.TaskSpec
	worker     string
	leased     bool
	res        *exp.TaskResult
	quarantine string
	hasQ       bool
}

// replayAccum folds journal records — from a local journal read or a
// replication stream, in any order, across any number of batches —
// into per-key state that installReplay later materializes. The
// standby keeps one of these live for the lifetime of its follow loop,
// so promotion pays only the install, not a re-read of the whole
// journal.
type replayAccum struct {
	states map[string]*replayKeyState
	order  []string
	stats  ReplayStats
}

func newReplayAccum() *replayAccum {
	return &replayAccum{states: make(map[string]*replayKeyState)}
}

func (a *replayAccum) get(key string) *replayKeyState {
	ks := a.states[key]
	if ks == nil {
		ks = &replayKeyState{}
		a.states[key] = ks
		a.order = append(a.order, key)
	}
	return ks
}

// setResult installs a completion payload, first writer wins — a
// duplicate completion for the same key (the hostile-replay case: two
// workers raced, or a replication batch was re-sent) is counted, never
// adopted over the first.
func (a *replayAccum) setResult(key string, res exp.TaskResult) *replayKeyState {
	ks := a.get(key)
	if ks.res != nil {
		a.stats.Duplicates++
		return ks
	}
	ks.res = &res
	return ks
}

// absorb folds one record into the accumulator. Unknown kinds and
// payload-less records are counted ignored; nothing panics on hostile
// input — a record is at worst a no-op with a counter.
func (a *replayAccum) absorb(rec exp.Record) {
	switch rec.Kind {
	case exp.KindQueued:
		ks := a.get(rec.Key)
		if rec.Spec != nil && ks.spec == nil {
			spec := *rec.Spec
			ks.spec = &spec
		}
	case exp.KindLeased, exp.KindStolen:
		ks := a.get(rec.Key)
		ks.leased = true
		ks.worker = rec.Worker
	case exp.KindQuarantined:
		ks := a.get(rec.Key)
		ks.hasQ = true
		ks.quarantine = rec.ErrMsg
	case exp.KindTerm:
		if rec.Term > a.stats.Term {
			a.stats.Term = rec.Term
		} else {
			a.stats.StaleTerms++
		}
	case exp.KindMix, exp.KindGPU, exp.KindScenario:
		if rec.Result == nil {
			a.stats.Ignored++
			return
		}
		ks := a.setResult(rec.Kind+"/"+rec.Key, exp.TaskResult{Result: rec.Result})
		if rec.Spec != nil && ks.spec == nil {
			spec := *rec.Spec
			ks.spec = &spec
		}
	case exp.KindCPU:
		a.setResult(rec.Kind+"/"+rec.Key, exp.TaskResult{IPC: rec.IPC})
	case exp.KindTwin:
		if rec.Twin == nil && rec.Result == nil && rec.IPC == 0 {
			a.stats.Ignored++
			return
		}
		res := exp.TaskResult{Tier: exp.TierTwin, Prediction: rec.Twin,
			Result: rec.Result, IPC: rec.IPC}
		if rec.Result != nil || rec.IPC != 0 {
			res.Tier = exp.TierFull // auto tier that escalated
		}
		a.setResult(rec.Kind+"/"+rec.Key, res)
	default:
		a.stats.Ignored++
	}
}

// Replay rebuilds coordinator state from journal records before
// serving. It is order-tolerant — a completion or quarantine wins for
// its key no matter where the records landed — because grants are
// journaled concurrently with admissions and a compacted journal keeps
// only each (kind, key)'s last record.
//
// An incomplete leased key is re-armed: its last holder gets a fresh
// TTL (counted as a grant, so conservation holds for the new process)
// and can renew or complete as if the coordinator never died; if the
// holder died too, the lease expires and the task is stolen normally.
func (c *Coordinator) Replay(recs []exp.Record) ReplayStats {
	a := newReplayAccum()
	for _, rec := range recs {
		a.absorb(rec)
	}
	return c.installReplay(a)
}

// installReplay materializes an accumulator into live coordinator
// state: the store, failed tasks, the pending queue, and re-armed
// leases. The coordinator's term floor is lifted to the journal's —
// OpenTerm afterwards takes office one past it. This is Replay's
// second half, shared with standby promotion.
func (c *Coordinator) installReplay(a *replayAccum) ReplayStats {
	stats := a.stats
	c.mu.Lock()
	defer c.mu.Unlock()
	if stats.Term > c.term {
		c.term = stats.Term
	}
	now := c.cfg.Now()
	for _, key := range a.order {
		ks := a.states[key]
		switch {
		case ks.res != nil:
			c.store[key] = *ks.res
			stats.Completed++
			if ks.spec == nil && !ks.leased && !ks.hasQ {
				// Completion for a key this journal never admitted or
				// leased — a foreign worker's report or a replication
				// stream that started past the admission. Adopted (the
				// store is content-addressed, a result is a result) and
				// counted so the gap is visible.
				stats.Orphans++
			}
		case ks.hasQ:
			t := &task{key: key, status: server.StatusFailed, errMsg: ks.quarantine, done: make(chan struct{})}
			if ks.spec != nil {
				t.spec = *ks.spec
			}
			close(t.done)
			c.tasks[key] = t
			stats.Quarantined++
		default:
			spec := ks.spec
			if spec == nil {
				if parsed, err := exp.ParseKey(key); err == nil {
					spec = &parsed
				} else {
					// A lease record with no admission record and an
					// opaque key (scenario digests): the task cannot be
					// reconstructed. Counted, never silent.
					stats.Unrecoverable++
					continue
				}
			}
			t := &task{spec: *spec, key: key, status: server.StatusQueued, done: make(chan struct{})}
			c.tasks[key] = t
			if ks.leased && ks.worker != "" {
				t.status = server.StatusRunning
				t.worker = ks.worker
				t.lastWorker = ks.worker
				t.deadline = now.Add(c.cfg.LeaseTTL)
				t.grants = 1
				c.granted++
				c.inflight++
				c.touchWorkerLocked(ks.worker, "")
				stats.Leased++
			} else {
				c.pending = append(c.pending, key)
				stats.Pending++
			}
		}
	}
	return stats
}

// Counters snapshots every registered fleet series (tests assert the
// conservation law and monotonicity against it).
func (c *Coordinator) Counters() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range c.reg.Snapshot() {
		out[s.Name] = s.Value
	}
	return out
}

// CheckConservation verifies the grant accounting identity; the chaos
// gate and unit tests call it after every settling point.
func (c *Coordinator) CheckConservation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.granted != c.grantsCompleted+c.expired+c.grantsFailed+c.inflight {
		return fmt.Errorf("fleet: lease accounting violated: granted=%d != completed=%d + expired=%d + failed=%d + inflight=%d",
			c.granted, c.grantsCompleted, c.expired, c.grantsFailed, c.inflight)
	}
	if c.quarantined > c.grantsFailed+c.granted {
		return fmt.Errorf("fleet: quarantined=%d exceeds failure budget", c.quarantined)
	}
	return nil
}

// PendingKeys lists queued keys in dispatch order (tests and hetsimctl
// debugging; not part of the lease protocol).
func (c *Coordinator) PendingKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	seen := make(map[string]bool)
	for _, key := range c.pending {
		if t := c.tasks[key]; t != nil && t.status == server.StatusQueued && !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
