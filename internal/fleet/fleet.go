// Package fleet shards simulation campaigns across many hetsimd-style
// worker nodes behind one coordinator (DESIGN.md §13).
//
// The coordinator owns three pieces of state:
//
//   - a pending queue of admitted tasks, fed by the same public
//     /v1/runs API one hetsimd serves, so internal/client and
//     hetsimctl drive a fleet unchanged;
//   - a lease table: each task is leased to exactly one worker with a
//     deadline, renewed by heartbeat while the run executes; an
//     expired lease re-enqueues the task for work-stealing by whichever
//     worker asks next;
//   - a content-addressed result store keyed by exp.TaskSpec.Key — the
//     idempotency token that already names a run by its content (mix,
//     policy, scenario digest). A key present in the store is never
//     executed again: resubmissions, duplicate completions, and
//     post-restart re-leases all resolve to a store hit.
//
// Crash consistency rides the PR 3/PR 5 journal machinery: the
// coordinator journals a task's admission (KindQueued), every lease
// grant (KindLeased, or KindStolen when the grant moves a task between
// workers), each first completion (the run's natural result record),
// and poisoned tasks (KindQuarantined, panic stack attached). A
// coordinator restarted with -resume replays the journal into the
// store, the pending queue, and re-armed leases, so a fleet that lost
// its coordinator — or any worker, by SIGKILL — converges to byte-
// identical results with zero recomputation of completed keys.
//
// Failure classification is typed: transient failures (a run
// interrupted by shutdown or a lost lease) re-enqueue without
// prejudice; a panicking run marks the task poisoned by that worker,
// and the same task panicking on enough distinct workers is
// quarantined — the PR 5 circuit-breaker idea at fleet granularity,
// proving the fault travels with the task, not the node.
package fleet

import (
	"time"

	"repro/internal/exp"
)

// Term fencing headers (DESIGN.md §15). Every coordinator response
// carries its current term; participants track the highest term they
// have seen and treat anything older as a deposed incarnation.
const (
	// HeaderTerm is set on every response from a serving coordinator:
	// the decimal epoch of this incarnation.
	HeaderTerm = "X-Fleet-Term"

	// HeaderStandby is set (value "1") on responses from an unpromoted
	// standby. Clients that land here rotate to the next address in
	// their list instead of retrying against a node that cannot serve.
	HeaderStandby = "X-Fleet-Standby"
)

// Failure classes a worker reports with a failed completion.
const (
	// ClassTransient marks a failure external to the task itself — the
	// worker was shutting down, the lease was lost, a deadline expired.
	// The task re-enqueues with no poison mark.
	ClassTransient = "transient"

	// ClassPanic marks a RunError with a recovered panic stack. The
	// reporting worker is recorded against the task; ClassPanic reports
	// from QuarantineThreshold distinct workers quarantine it.
	ClassPanic = "panic"

	// ClassPermanent marks a failure retrying cannot fix (validation
	// rejected deep in the run). The task is quarantined immediately.
	ClassPermanent = "permanent"
)

// RegisterRequest announces a worker to the coordinator. Worker is the
// node's stable identity across restarts (hetsimd derives it from
// -worker-id or its listen address); URL is advisory, for operators
// reading /metricsz.
type RegisterRequest struct {
	Worker string `json:"worker"`
	URL    string `json:"url,omitempty"`
}

// LeaseRequest asks for one task lease. Workers with idle slots poll
// this endpoint — the pull model is what makes stealing free: an idle
// worker's next poll picks up whatever an expired lease put back.
// Term is the highest coordinator epoch the worker has observed (see
// RenewRequest).
type LeaseRequest struct {
	Worker string `json:"worker"`
	Term   uint64 `json:"term,omitempty"`
}

// LeaseGrant is one additional task granted alongside a batched lease
// (LeaseResponse.More). It shares the response's TTL.
type LeaseGrant struct {
	Key  string        `json:"key"`
	Spec *exp.TaskSpec `json:"spec"`
}

// LeaseResponse grants one task (Key+Spec, with TTLMS the renewal
// budget) or reports none available. Draining tells agents to back off
// without deregistering: a draining coordinator still accepts
// completions for in-flight leases.
//
// More carries extra grants when lease batching is on and twin-tier
// tasks head the queue: a twin task costs microseconds to execute, so
// per-task HTTP round-trips would dominate; batching amortizes one
// poll across up to Config.LeaseBatch of them. Every grant in More is
// individually leased, renewed, stolen, and completed — the wire shape
// is batched, the ledger is not.
// Term is the granting coordinator's epoch. An agent that has seen a
// newer term from any coordinator rejects the grant without executing
// it — a deposed primary cannot hand out work after a failover.
type LeaseResponse struct {
	Key      string        `json:"key,omitempty"`
	Spec     *exp.TaskSpec `json:"spec,omitempty"`
	TTLMS    int64         `json:"ttl_ms,omitempty"`
	More     []LeaseGrant  `json:"more,omitempty"`
	None     bool          `json:"none,omitempty"`
	Draining bool          `json:"draining,omitempty"`
	Term     uint64        `json:"term,omitempty"`
}

// RenewRequest is the heartbeat: the worker lists every lease it still
// holds, and the coordinator extends their deadlines. Term is the
// highest coordinator epoch the worker has observed; a coordinator
// receiving a term newer than its own knows it has been deposed and
// fences itself.
type RenewRequest struct {
	Worker string   `json:"worker"`
	Keys   []string `json:"keys"`
	Term   uint64   `json:"term,omitempty"`
}

// RenewResponse lists the keys the worker no longer holds — expired
// and re-granted elsewhere, completed by another worker, or forgotten
// by a restarted coordinator. The agent cancels those runs: the result
// would be discarded anyway, and cancelling promptly keeps a stolen
// task from being computed twice for longer than one heartbeat.
type RenewResponse struct {
	Lost []string `json:"lost,omitempty"`
}

// CompleteRequest reports one finished run: Result on success, or the
// failure's message, class, and (for panics) stack. Term is the
// highest coordinator epoch the worker has observed (fencing, as in
// RenewRequest).
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Key    string          `json:"key"`
	Result *exp.TaskResult `json:"result,omitempty"`
	ErrMsg string          `json:"err,omitempty"`
	Stack  string          `json:"stack,omitempty"`
	Class  string          `json:"class,omitempty"`
	Term   uint64          `json:"term,omitempty"`
}

// CompleteResponse acknowledges a completion report. Duplicate means
// the store already held the key — the reporting worker recomputed (or
// raced) a completed key, counted as a store hit, its payload
// discarded in favor of the first. StaleTerm means the receiving
// coordinator has been deposed and refused the report; the worker
// re-sends it through its (rotating) client so it lands on the new
// primary — results are content-addressed, so the retry is safe.
type CompleteResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
	StaleTerm bool `json:"stale_term,omitempty"`
}

// StreamRequest parameterizes GET /fleet/v1/journal/stream via query
// string: from= is the byte offset of the previous response's Next,
// max= caps the records per batch.
//
// StreamResponse is one replication batch. Records carry their
// original per-record sha256 hashes — the standby verifies each before
// absorbing. Next is the offset for the follower's next poll. Reset
// tells the follower its offset no longer matches this journal (the
// primary compacted or was replaced); the follower restarts from 0
// with a fresh accumulator. Term is the primary's current epoch.
type StreamResponse struct {
	Records []exp.Record `json:"records,omitempty"`
	Next    int64        `json:"next"`
	Term    uint64       `json:"term,omitempty"`
	More    bool         `json:"more,omitempty"`
	Reset   bool         `json:"reset,omitempty"`
}

// TermRequest is the POST /fleet/v1/term body: a fencing notification
// carrying the sender's term. A promoted standby best-effort posts its
// new term to the old primary so a still-alive deposed coordinator
// fences itself immediately instead of at its next worker contact.
type TermRequest struct {
	Term uint64 `json:"term"`
}

// PromoteResponse is the POST /fleet/v1/promote reply: the term the
// coordinator now serves at (after promotion, or its existing term if
// it was already primary).
type PromoteResponse struct {
	Term     uint64 `json:"term"`
	Promoted bool   `json:"promoted"`
}

// Config parameterizes the coordinator.
type Config struct {
	// LeaseTTL is how long a grant lives between heartbeats; a lease
	// not renewed within it expires and the task re-enqueues. Default
	// 15s. Agents renew at TTL/3.
	LeaseTTL time.Duration

	// QueueDepth bounds the pending queue; submissions past it are
	// shed with 429 + Retry-After. Default 4096 — a coordinator queues
	// campaigns, not single runs.
	QueueDepth int

	// QuarantineThreshold is how many distinct workers must report a
	// panic on the same task before it is quarantined. Default 2: one
	// panicking node proves nothing, the same panic on a second node
	// proves the task. Minimum 1.
	QuarantineThreshold int

	// MaxAttempts caps how many times one task may be granted before
	// it is quarantined regardless of class — the backstop against a
	// task that kills every lease without ever reporting. Default 16.
	MaxAttempts int

	// MaxWait caps the ?wait long-poll duration. Default 30s.
	MaxWait time.Duration

	// ShedRetryAfter is the backoff hint on shed and draining
	// rejections. Default 1s.
	ShedRetryAfter time.Duration

	// LeaseBatch caps how many tasks one lease response may grant when
	// consecutive twin-tier tasks head the queue. Cycle-accurate tasks
	// are never batched (one node runs one simulation), and batching
	// never reorders dispatch: the batch stops at the first queued task
	// that is not twin-tier. Default 1 (batching off).
	LeaseBatch int

	// AffinityScan bounds how far past the queue head the grant path
	// looks for a task whose mix family last completed on the asking
	// worker (warm-memo affinity). Negative disables the scan; grants
	// then follow strict FIFO/steal order. Default 64.
	AffinityScan int

	// ID names this coordinator incarnation in journaled term records
	// (advisory, for operators reading the journal).
	ID string

	// Journal, when non-nil, receives the fleet's crash-consistency
	// records; pair with Replay on restart.
	Journal *exp.Journal

	// Now is the clock seam (tests compress lease expiry).
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.QuarantineThreshold < 1 {
		c.QuarantineThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.LeaseBatch < 1 {
		c.LeaseBatch = 1
	}
	if c.AffinityScan == 0 {
		c.AffinityScan = 64
	}
	if c.AffinityScan < 0 {
		c.AffinityScan = 0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}
