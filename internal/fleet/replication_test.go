package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/server"
	"repro/internal/sim"
)

// journaledCoordinator builds a coordinator writing a real journal file
// under t.TempDir, returning both so tests can stream and inspect it.
func journaledCoordinator(t *testing.T, mutate func(*Config)) (*Coordinator, *exp.Journal, *fakeClock) {
	t.Helper()
	j, _, _, err := exp.OpenJournal(filepath.Join(t.TempDir(), "fleet.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	clk := newFakeClock()
	cfg := Config{LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: j, ID: "primary"}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), j, clk
}

// specIDs are valid SPEC CPU2006 workload ids for admission tests.
var specIDs = []int{470, 462, 429, 433, 401}

func TestJournalStreamPagingAndReset(t *testing.T) {
	c, _, _ := journaledCoordinator(t, nil)
	c.OpenTerm()
	for i := 0; i < 5; i++ {
		mustAdmit(t, c, exp.CPUTaskSpec(specIDs[i]))
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	fetch := func(from int64, max int) StreamResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/fleet/v1/journal/stream?from=%d&max=%d", ts.URL, from, max))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		var sr StreamResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	// Page through the journal two records at a time: 1 term + 5
	// admissions, every record hash-valid, More until the tail.
	var got []exp.Record
	var from int64
	for {
		sr := fetch(from, 2)
		if sr.Reset {
			t.Fatalf("unexpected reset at offset %d", from)
		}
		if sr.Term != c.Term() {
			t.Fatalf("stream term %d, want %d", sr.Term, c.Term())
		}
		for _, rec := range sr.Records {
			if !exp.VerifyRecord(rec) {
				t.Fatalf("streamed record failed verification: %+v", rec)
			}
		}
		got = append(got, sr.Records...)
		from = sr.Next
		if !sr.More {
			break
		}
	}
	if len(got) != 6 {
		t.Fatalf("streamed %d records, want 6 (1 term + 5 queued)", len(got))
	}
	if got[0].Kind != exp.KindTerm || got[0].Term != c.Term() {
		t.Fatalf("first record = %+v, want the term record", got[0])
	}

	// An offset past the file means the journal was replaced: Reset.
	if sr := fetch(from+4096, 10); !sr.Reset {
		t.Fatalf("offset past EOF: %+v, want Reset", sr)
	}
	// The exhausted offset itself is not a reset, just empty.
	if sr := fetch(from, 10); sr.Reset || len(sr.Records) != 0 || sr.More {
		t.Fatalf("tail poll = %+v, want empty non-reset", sr)
	}
}

func TestStandbyFollowsPromotesAndFencesPrimary(t *testing.T) {
	primary, _, clk := journaledCoordinator(t, nil)
	primary.OpenTerm()
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	doneKey := mustAdmit(t, primary, exp.CPUTaskSpec(470))
	leasedKey := mustAdmit(t, primary, exp.MixTaskSpec("M1", sim.PolicyBaseline))
	queuedKey := mustAdmit(t, primary, exp.CPUTaskSpec(462))

	if l := primary.Lease("w1"); l.None || l.Key != doneKey {
		t.Fatalf("lease 1 = %+v", l)
	}
	if cr := primary.Complete(CompleteRequest{Worker: "w1", Key: doneKey, Result: okResult()}); !cr.Accepted {
		t.Fatalf("complete = %+v", cr)
	}
	if l := primary.Lease("w1"); l.None || l.Key != leasedKey {
		t.Fatalf("lease 2 = %+v", l)
	}

	sj, _, _, err := exp.OpenJournal(filepath.Join(t.TempDir(), "standby.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close()
	sb := NewStandby(StandbyConfig{
		Primary:    ts.URL,
		Fleet:      Config{LeaseTTL: 10 * time.Second, Now: clk.Now, Journal: sj, ID: "standby"},
		BatchLimit: 3, // force multiple polls
		Logf:       t.Logf,
	})
	ctx := context.Background()
	for more := true; more; {
		var err error
		if more, err = sb.pollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sb.Coordinator() != nil {
		t.Fatal("standby promoted itself while only following")
	}

	c, term := sb.Promote("test")
	if term != primary.Term()+1 {
		t.Fatalf("promoted term %d, want %d", term, primary.Term()+1)
	}
	if c2, term2 := sb.Promote("again"); c2 != c || term2 != term {
		t.Fatalf("promotion not idempotent: %v/%d vs %v/%d", c2, term2, c, term)
	}
	st := sb.InstallStats()
	if st.Completed != 1 || st.Leased != 1 || st.Pending != 1 {
		t.Fatalf("install stats = %+v, want 1 completed / 1 leased / 1 pending", st)
	}

	// The completed key serves from the store — zero recompute.
	if resp, code := c.Admit(exp.CPUTaskSpec(470)); code != 200 || resp.Status != server.StatusDone {
		t.Fatalf("resubmit on promoted standby: code %d status %q", code, resp.Status)
	}
	// The in-flight lease was re-armed for its holder: w1 renews and
	// completes as if nothing happened.
	if r := c.Renew("w1", []string{leasedKey}); len(r.Lost) != 0 {
		t.Fatalf("re-armed lease lost: %v", r.Lost)
	}
	mixRes := &exp.TaskResult{Result: &sim.Result{MixID: "M1", MeasuredCycles: 100, IPC: []float64{1.5}}}
	if cr := c.Complete(CompleteRequest{Worker: "w1", Key: leasedKey, Result: mixRes}); !cr.Accepted || cr.Duplicate {
		t.Fatalf("complete on promoted standby = %+v", cr)
	}
	// The queued key is grantable.
	if l := c.Lease("w2"); l.None || l.Key != queuedKey {
		t.Fatalf("lease on promoted standby = %+v", l)
	}
	mustConserve(t, c)

	// Promotion fenced the old primary over /fleet/v1/term.
	if !primary.Deposed() {
		t.Fatal("old primary not deposed after promotion")
	}
	// The deposed primary keeps its own (now stale) term: clients that
	// learned the new term from the promoted standby treat its header
	// as stale and rotate away.
	if primary.Term() != term-1 {
		t.Fatalf("old primary term %d, want its own %d", primary.Term(), term-1)
	}

	// The standby's journal — mirrored replication records plus its own
	// post-promotion appends — alone reconstructs the campaign: both
	// completions in the store, the w2 lease re-armed, nothing lost. A
	// crashed ex-standby, or an operator -resume, starts from this.
	recs, _, _ := exp.ReadJournalAt(sj.Path(), 0, 10_000)
	mirror := New(Config{LeaseTTL: 10 * time.Second, Now: clk.Now})
	mst := mirror.Replay(recs)
	if mst.Completed != 2 || mst.Leased != 1 || mst.Pending != 0 || mst.Term != term {
		t.Fatalf("mirror journal replay = %+v, want 2 completed / 1 leased / 0 pending at term %d", mst, term)
	}
}

func TestStandbyDropsTamperedRecordsAndResetsOnNewTerm(t *testing.T) {
	term := uint64(1)
	good := exp.Record{Kind: exp.KindQueued, Key: "cpu/470", Spec: specPtr(exp.CPUTaskSpec(470))}
	// A record whose bytes changed after hashing: must be dropped.
	bad := good
	bad.Key = "cpu/471"
	bad.Hash = "deadbeef"
	goodHashed := mustHashed(t, good)

	next := int64(100)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(StreamResponse{
			Records: []exp.Record{goodHashed, bad},
			Next:    next,
			Term:    term,
		})
	}))
	defer fake.Close()

	sb := NewStandby(StandbyConfig{Primary: fake.URL, Fleet: Config{LeaseTTL: time.Second}, Logf: t.Logf})
	if _, err := sb.pollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	sb.mu.Lock()
	applied, badN, offset := sb.applied, sb.bad, sb.offset
	sb.mu.Unlock()
	if applied != 1 || badN != 1 || offset != 100 {
		t.Fatalf("applied=%d bad=%d offset=%d, want 1/1/100", applied, badN, offset)
	}

	// The primary restarts at a higher term: the stream identity
	// changed, so the follower must restart from zero.
	term, next = 2, 0
	if _, err := sb.pollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	sb.mu.Lock()
	resets, offset2 := sb.resets, sb.offset
	sb.mu.Unlock()
	if resets != 1 || offset2 != 0 {
		t.Fatalf("resets=%d offset=%d after term change, want 1/0", resets, offset2)
	}
}

func specPtr(s exp.TaskSpec) *exp.TaskSpec { return &s }

// mustHashed round-trips a record through a journal to stamp its hash.
func mustHashed(t *testing.T, rec exp.Record) exp.Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.jsonl")
	j, _, _, err := exp.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, _, err := exp.ReadJournalAt(path, 0, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("re-read hashed record: %v (%d records)", err, len(recs))
	}
	return recs[0]
}

func TestDeposedCoordinatorFencesEverythingButObservability(t *testing.T) {
	c, _, _ := journaledCoordinator(t, nil)
	c.OpenTerm()
	mustAdmit(t, c, exp.CPUTaskSpec(470))
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	if c.ObserveTerm(c.Term() + 1); !c.Deposed() {
		t.Fatal("ObserveTerm(newer) did not depose")
	}

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	// Campaign traffic bounces with the standby marker so clients rotate.
	if resp := get("/v1/runs/cpu/470"); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get(HeaderStandby) == "" {
		t.Fatalf("deposed status endpoint: %d standby=%q", resp.StatusCode, resp.Header.Get(HeaderStandby))
	}
	// Observability, replication, and fencing stay reachable.
	for _, path := range []string{"/healthz", "/metricsz", "/fleet/v1/journal/stream?from=0"} {
		if resp := get(path); resp.StatusCode != http.StatusOK {
			t.Fatalf("deposed %s: %d, want 200", path, resp.StatusCode)
		}
	}
	// Every response — fenced or exempt — names the term.
	if got := get("/healthz").Header.Get(HeaderTerm); got == "" || got == "0" {
		t.Fatalf("missing term header on exempt path: %q", got)
	}

	// A worker that saw the new term reports a completion here anyway
	// (raced the failover): the deposed coordinator must refuse it.
	body, _ := json.Marshal(CompleteRequest{Worker: "w1", Key: "cpu/470", Result: okResult(), Term: c.Term()})
	resp, err := http.Post(ts.URL+"/fleet/v1/complete", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deposed complete: %d, want 503 fence", resp.StatusCode)
	}
	if n := c.Counters()["fleet_fenced_requests"]; n < 2 {
		t.Fatalf("fleet_fenced_requests = %v, want >= 2", n)
	}
}

func TestCompleteCarryingNewerTermDeposesAndRefuses(t *testing.T) {
	c, _, _ := journaledCoordinator(t, nil)
	c.OpenTerm()
	key := mustAdmit(t, c, exp.CPUTaskSpec(470))
	if l := c.Lease("w1"); l.None {
		t.Fatal("no grant")
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// The very request that reveals the newer term is the first one
	// refused: the result must land on the new primary, not here.
	body, _ := json.Marshal(CompleteRequest{Worker: "w1", Key: key, Result: okResult(), Term: c.Term() + 1})
	resp, err := http.Post(ts.URL+"/fleet/v1/complete", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr CompleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if !cr.StaleTerm || cr.Accepted {
		t.Fatalf("complete with newer term = %+v, want StaleTerm refusal", cr)
	}
	if !c.Deposed() {
		t.Fatal("coordinator not deposed by the completion's term")
	}
	if _, hit := c.store[key]; hit {
		t.Fatal("deposed coordinator absorbed the result anyway")
	}
}

func TestAgentRejectsGrantFromStaleTerm(t *testing.T) {
	// A load balancer (or a half-failed-over address list) can hand an
	// agent a lease granted by the OLD primary while the agent already
	// knows the new term from a prior response. The grant's body term
	// betrays its origin; the agent must drop it, not execute it.
	var grants int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderTerm, "5") // the address now fronts term 5
		switch {
		case strings.HasSuffix(r.URL.Path, "/lease"):
			grants++
			spec := exp.CPUTaskSpec(470)
			json.NewEncoder(w).Encode(LeaseResponse{Key: spec.Key(), Spec: &spec, TTLMS: 60_000, Term: 4})
		default:
			json.NewEncoder(w).Encode(struct{}{})
		}
	}))
	defer ts.Close()

	executed := make(chan string, 1)
	ag := &Agent{
		Coordinator: fastClient(ts.URL),
		WorkerID:    "w1",
		PollInterval: 5 * time.Millisecond,
		RunFunc: func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
			executed <- spec.Key()
			return exp.TaskResult{}, nil
		},
		Logf: t.Logf,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_ = ag.Run(ctx)

	select {
	case key := <-executed:
		t.Fatalf("agent executed %s from a stale-term grant", key)
	default:
	}
	if grants == 0 {
		t.Fatal("agent never polled for a lease")
	}
	if ag.StaleGrants() == 0 {
		t.Fatal("stale grants not counted")
	}
}

func TestReplayHostileInputs(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	spec := exp.CPUTaskSpec(100)
	recs := []exp.Record{
		{Kind: exp.KindQueued, Key: "cpu/100", Spec: &spec},
		{Kind: exp.KindCPU, Key: "100", IPC: 1.0},
		// Duplicate completion for an already-resolved key: first wins.
		{Kind: exp.KindCPU, Key: "100", IPC: 9.9},
		// Term records out of order: the max wins, the rest are counted.
		{Kind: exp.KindTerm, Term: 3},
		{Kind: exp.KindTerm, Term: 2},
		{Kind: exp.KindTerm, Term: 3},
		// Completion for a key never admitted or leased here: adopted
		// into the store (a result is a result) and counted as orphan.
		{Kind: exp.KindCPU, Key: "999", IPC: 2.0},
		// Foreign and payload-less records: ignored, never fatal.
		{Kind: "cell", Key: "sweep/x"},
		{Kind: exp.KindMix, Key: "M1/0"}, // mix completion without a payload
	}
	st := c.Replay(recs)
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if st.StaleTerms != 2 || st.Term != 3 {
		t.Fatalf("StaleTerms=%d Term=%d, want 2/3", st.StaleTerms, st.Term)
	}
	if st.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", st.Orphans)
	}
	if st.Ignored != 2 {
		t.Fatalf("Ignored = %d, want 2", st.Ignored)
	}
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (cpu/100 + adopted orphan)", st.Completed)
	}
	if res, ok := c.store["cpu/100"]; !ok || res.IPC != 1.0 {
		t.Fatalf("store[cpu/100] = %+v %v, want first writer's 1.0", res, ok)
	}
	if _, ok := c.store["cpu/999"]; !ok {
		t.Fatal("orphan completion not adopted")
	}
	// The journal's term floors the coordinator's: taking office opens
	// strictly above everything already seen.
	if term := c.OpenTerm(); term != 4 {
		t.Fatalf("OpenTerm after replay = %d, want 4", term)
	}
	mustConserve(t, c)
}
