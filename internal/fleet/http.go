package fleet

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/server"
)

// Handler returns the coordinator's HTTP API. The public half is
// wire-compatible with one hetsimd, so internal/client and hetsimctl
// drive a fleet with no changes:
//
//	POST   /v1/runs                  submit (idempotent by task key)
//	GET    /v1/runs/{key}            status, with optional ?wait= long-poll
//	GET    /v1/results/{key}         completed run's payload
//	GET    /healthz                  liveness + identity
//	GET    /readyz                   readiness (503 once draining)
//	GET    /metricsz                 fleet + journal counters
//
// The /fleet/v1 half is the worker lease protocol plus the HA plane
// (DESIGN.md §15):
//
//	POST   /fleet/v1/workers         register {worker, url}
//	DELETE /fleet/v1/workers/{id}    deregister, releasing held leases
//	GET    /fleet/v1/workers         registry listing (worker → leases)
//	POST   /fleet/v1/lease           request one task lease
//	POST   /fleet/v1/renew           heartbeat: extend held leases
//	POST   /fleet/v1/complete        report a run outcome
//	GET    /fleet/v1/journal/stream  replication: journal records from ?from=
//	POST   /fleet/v1/term            fencing: observe another incarnation's term
//	POST   /fleet/v1/promote         409 here — only a standby promotes
//
// Every response carries X-Fleet-Term. Once deposed by a newer term,
// the coordinator answers everything except health, metrics, the
// replication stream, and the fencing endpoints with 503 +
// X-Fleet-Standby, which rotates clients and agents to the promoted
// primary.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", c.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{key...}", c.handleStatus)
	mux.HandleFunc("GET /v1/results/{key...}", c.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := c.Health()
		if h.Draining {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = c.reg.WriteSnapshot(w)
	})

	mux.HandleFunc("POST /fleet/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad register body"})
			return
		}
		c.Register(req.Worker, req.URL)
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("DELETE /fleet/v1/workers/{id}", func(w http.ResponseWriter, r *http.Request) {
		c.Deregister(r.PathValue("id"))
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /fleet/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		held := c.Workers()
		type entry struct {
			Worker string `json:"worker"`
			Leases int    `json:"leases"`
		}
		out := make([]entry, 0, len(held))
		for id, n := range held {
			out = append(out, entry{Worker: id, Leases: n})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /fleet/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad lease body"})
			return
		}
		c.ObserveTerm(req.Term)
		writeJSON(w, http.StatusOK, c.Lease(req.Worker))
	})
	mux.HandleFunc("POST /fleet/v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad renew body"})
			return
		}
		c.ObserveTerm(req.Term)
		writeJSON(w, http.StatusOK, c.Renew(req.Worker, req.Keys))
	})
	mux.HandleFunc("POST /fleet/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" || req.Key == "" {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad complete body"})
			return
		}
		if c.ObserveTerm(req.Term); c.Deposed() {
			// The reporting worker has seen a newer incarnation: this
			// coordinator must not absorb the result. StaleTerm makes
			// the worker re-send through its rotating client, landing
			// the (content-addressed, hence safe to retry) completion
			// on the promoted primary.
			c.countFenced()
			writeJSON(w, http.StatusOK, CompleteResponse{StaleTerm: true})
			return
		}
		writeJSON(w, http.StatusOK, c.Complete(req))
	})
	mux.HandleFunc("GET /fleet/v1/journal/stream", c.handleStream)
	mux.HandleFunc("POST /fleet/v1/term", func(w http.ResponseWriter, r *http.Request) {
		var req TermRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad term body"})
			return
		}
		c.ObserveTerm(req.Term)
		writeJSON(w, http.StatusOK, TermRequest{Term: c.Term()})
	})
	mux.HandleFunc("POST /fleet/v1/promote", func(w http.ResponseWriter, r *http.Request) {
		// Promotion is a standby operation; a serving coordinator is
		// already at the head of its term. 409 tells the operator the
		// address they targeted is a primary, alongside its term.
		writeJSON(w, http.StatusConflict, PromoteResponse{Term: c.Term(), Promoted: false})
	})
	return c.fenceHandler(mux)
}

// fenceHandler stamps X-Fleet-Term on every response and bounces
// requests off a deposed coordinator with 503 + X-Fleet-Standby —
// clients and agents rotate to the promoted primary. The health,
// metrics, replication, and fencing endpoints stay reachable: a
// deposed coordinator is still observable, its journal is still valid
// history for a follower, and fencing must be idempotent.
func (c *Coordinator) fenceHandler(next http.Handler) http.Handler {
	exempt := map[string]bool{
		"/healthz":                 true,
		"/metricsz":                true,
		"/fleet/v1/journal/stream": true,
		"/fleet/v1/term":           true,
		"/fleet/v1/promote":        true,
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderTerm, strconv.FormatUint(c.Term(), 10))
		if c.Deposed() && !exempt[r.URL.Path] {
			c.countFenced()
			w.Header().Set(HeaderStandby, "1")
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				server.StatusResponse{Error: "coordinator deposed by newer term", RetryAfterMS: 1000})
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.StatusResponse{Error: "bad submit body: " + err.Error()})
		return
	}
	// Per-run timeouts are accepted for wire compatibility but not
	// enforced fleet-side: the lease TTL plus worker-side deadlines
	// bound every run's lifetime.
	resp, code := c.Admit(req.TaskSpec)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		writeRejection(w, code, resp.Key, resp.Error, time.Duration(resp.RetryAfterMS)*time.Millisecond)
		return
	}
	writeJSON(w, code, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	status, errMsg, _, done, ok := c.state(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, server.StatusResponse{Key: key, Error: "unknown run"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" &&
		(status == server.StatusQueued || status == server.StatusRunning) {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, server.StatusResponse{Key: key, Error: "bad wait duration: " + err.Error()})
			return
		}
		if wait > c.cfg.MaxWait {
			wait = c.cfg.MaxWait
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
		case <-r.Context().Done():
		}
		status, errMsg, _, _, _ = c.state(key)
	}
	writeJSON(w, http.StatusOK, server.StatusResponse{Key: key, Status: status, Error: errMsg})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	status, errMsg, res, _, ok := c.state(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, server.StatusResponse{Key: key, Error: "unknown run"})
		return
	}
	switch status {
	case server.StatusDone:
		writeJSON(w, http.StatusOK, server.ResultResponse{Key: key, TaskResult: res})
	case server.StatusFailed:
		writeJSON(w, http.StatusInternalServerError, server.StatusResponse{Key: key, Status: status, Error: errMsg})
	default:
		writeJSON(w, http.StatusConflict, server.StatusResponse{Key: key, Status: status, Error: "run not complete"})
	}
}

// writeJSON and writeRejection mirror the server package's helpers
// (unexported there); the fleet handler keeps the same wire shapes.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeRejection(w http.ResponseWriter, code int, key, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, server.StatusResponse{
		Key:          key,
		Error:        msg,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}
