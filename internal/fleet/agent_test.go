package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/twin"
)

// fastClient builds a client with test-speed retry knobs.
func fastClient(base string) *client.Client {
	c := client.New(base)
	c.MaxAttempts = 20
	c.BaseBackoff = 5 * time.Millisecond
	c.MaxBackoff = 100 * time.Millisecond
	c.PollWait = 200 * time.Millisecond
	return c
}

// startAgent launches an agent against the coordinator at base and
// returns it plus a stop func.
func startAgent(t *testing.T, base, id string, run func(context.Context, exp.TaskSpec) (exp.TaskResult, error)) (*Agent, func()) {
	t.Helper()
	a := &Agent{
		Coordinator:  fastClient(base),
		WorkerID:     id,
		Slots:        1,
		PollInterval: 10 * time.Millisecond,
		RunFunc:      run,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Run(ctx)
	}()
	return a, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("agent did not stop")
		}
	}
}

// TestAgentsDrainCampaignOverHTTP drives a small campaign end to end:
// tasks submitted through the public API, executed by two polling
// agents via the lease protocol, results fetched by an unmodified
// internal/client — the coordinator is wire-compatible with hetsimd.
func TestAgentsDrainCampaignOverHTTP(t *testing.T) {
	c := New(Config{LeaseTTL: 2 * time.Second})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	var executions atomic.Int64
	run := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		executions.Add(1)
		return exp.TaskResult{IPC: float64(spec.SpecID) / 100}, nil
	}
	_, stop1 := startAgent(t, ts.URL, "w1", run)
	defer stop1()
	_, stop2 := startAgent(t, ts.URL, "w2", run)
	defer stop2()

	ids := []int{401, 403, 410, 429, 433, 434, 437, 450}
	cl := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		res, err := cl.Run(ctx, exp.CPUTaskSpec(id), 0)
		if err != nil {
			t.Fatalf("run cpu/%d: %v", id, err)
		}
		if want := float64(id) / 100; res.IPC != want {
			t.Fatalf("cpu/%d IPC = %v, want %v", id, res.IPC, want)
		}
	}
	// Resubmitting the whole campaign re-executes nothing.
	before := executions.Load()
	for _, id := range ids {
		if _, err := cl.Run(ctx, exp.CPUTaskSpec(id), 0); err != nil {
			t.Fatalf("rerun cpu/%d: %v", id, err)
		}
	}
	if after := executions.Load(); after != before {
		t.Fatalf("resubmission re-executed %d tasks", after-before)
	}
	if int(before) != len(ids) {
		t.Fatalf("executions = %d, want %d (each key exactly once)", before, len(ids))
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["fleet_tasks_completed"] != float64(len(ids)) || m["fleet_workers"] != 2 {
		t.Fatalf("metrics = completed %v workers %v", m["fleet_tasks_completed"], m["fleet_workers"])
	}
}

// TestAgentClassifiesPanicsIntoQuarantine: a task whose run panics on
// every node crosses the distinct-worker threshold and surfaces to the
// client as a permanent failure with the stack preserved.
func TestAgentClassifiesPanicsIntoQuarantine(t *testing.T) {
	c := New(Config{LeaseTTL: 2 * time.Second, QuarantineThreshold: 2})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	run := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		if spec.SpecID == 462 {
			return exp.TaskResult{}, &exp.RunError{
				Key: spec.Key(), Phase: "cpu",
				Err:   fmt.Errorf("induced panic"),
				Stack: "goroutine 1 [running]:\ninduced",
			}
		}
		return exp.TaskResult{IPC: 1}, nil
	}
	_, stop1 := startAgent(t, ts.URL, "w1", run)
	defer stop1()
	_, stop2 := startAgent(t, ts.URL, "w2", run)
	defer stop2()

	cl := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := cl.Run(ctx, exp.CPUTaskSpec(462), 0)
	perr, ok := err.(*client.PermanentError)
	if !ok {
		t.Fatalf("run err = %v (%T), want PermanentError", err, err)
	}
	if perr.Msg == "" {
		t.Fatal("quarantine reason lost")
	}
	// Healthy keys still complete on the same fleet.
	if res, err := cl.Run(ctx, exp.CPUTaskSpec(470), 0); err != nil || res.IPC != 1 {
		t.Fatalf("healthy run = %v, %v", res, err)
	}
	if got := c.Counters()["fleet_quarantined"]; got != 1 {
		t.Fatalf("quarantined = %v, want 1", got)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestAgentDropsOutcomeOfLostLease: a worker whose lease is released
// mid-run (deregistration here; expiry in production) has the run
// cancelled by the heartbeat loss signal and reports nothing, while
// the steal path completes the task elsewhere.
func TestAgentDropsOutcomeOfLostLease(t *testing.T) {
	c := New(Config{LeaseTTL: 500 * time.Millisecond, QuarantineThreshold: 1})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	w1Started := make(chan struct{}, 1)
	w1Cancelled := make(chan struct{}, 1)
	run1 := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		select {
		case w1Started <- struct{}{}:
		default:
		}
		// Block until the loss signal cancels us; a completed result
		// here would be a wrong-answer hazard (IPC 999).
		<-ctx.Done()
		select {
		case w1Cancelled <- struct{}{}:
		default:
		}
		return exp.TaskResult{IPC: 999}, ctx.Err()
	}
	_, stop1 := startAgent(t, ts.URL, "w1", run1)
	defer stop1()

	cl := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.Submit(ctx, exp.CPUTaskSpec(481), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w1Started:
	case <-time.After(10 * time.Second):
		t.Fatal("w1 never leased the task")
	}
	// Kick w1 off the lease; its next renew reports the loss, which
	// must cancel the blocked run while the agent itself is still live.
	c.Deregister("w1")
	select {
	case <-w1Cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("lost lease never cancelled w1's run")
	}
	// Retire w1 before the steal so it cannot re-lease the key and
	// block again; then a healthy worker steals and completes it.
	stop1()
	run2 := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		return exp.TaskResult{IPC: 2.5}, nil
	}
	_, stop2 := startAgent(t, ts.URL, "w2", run2)
	defer stop2()

	res, err := cl.Run(ctx, exp.CPUTaskSpec(481), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 2.5 {
		t.Fatalf("IPC = %v, want w2's 2.5 (w1's cancelled run must not land)", res.IPC)
	}
	if got := c.Counters()["fleet_quarantined"]; got != 0 {
		t.Fatalf("lost-lease cancellation was misclassified: quarantined = %v", got)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestAgentExecutesBatchedLease drives a twin-tier campaign through a
// batch-granting coordinator: one agent drains eight tasks in a couple
// of lease polls instead of eight, every grant completes exactly once,
// and the ledger conserves.
func TestAgentExecutesBatchedLease(t *testing.T) {
	c := New(Config{LeaseTTL: 2 * time.Second, LeaseBatch: 4})
	var leaseCalls atomic.Int64
	h := c.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fleet/v1/lease" {
			leaseCalls.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var executions atomic.Int64
	run := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		executions.Add(1)
		return exp.TaskResult{Tier: exp.TierTwin,
			Prediction: &twin.Prediction{FPS: 40, Confidence: 0.9}}, nil
	}

	// The whole campaign is admitted before the agent starts, so the
	// queue heads are consecutive twin tasks at the first poll.
	var specs []exp.TaskSpec
	for p := 0; p < 8; p++ {
		specs = append(specs, twinMixSpec("M1", sim.Policy(p)))
	}
	cl := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range specs {
		if _, err := cl.Submit(ctx, s, 0); err != nil {
			t.Fatalf("submit %s: %v", s.Key(), err)
		}
	}

	// A long poll interval makes lease traffic countable: the agent only
	// re-polls immediately after draining a batch, so eight tasks cost
	// two granting polls plus at most one empty one before completion.
	a := &Agent{
		Coordinator:  fastClient(ts.URL),
		WorkerID:     "w1",
		Slots:        1,
		PollInterval: time.Hour,
		RunFunc:      run,
	}
	actx, acancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = a.Run(actx) }()
	defer func() { acancel(); <-done }()

	for _, s := range specs {
		res, err := cl.Run(ctx, s, 0)
		if err != nil {
			t.Fatalf("run %s: %v", s.Key(), err)
		}
		if res.Tier != exp.TierTwin || res.Prediction == nil {
			t.Fatalf("%s = %+v, want a twin prediction", s.Key(), res)
		}
	}
	if got := executions.Load(); got != int64(len(specs)) {
		t.Fatalf("executions = %d, want %d", got, len(specs))
	}
	if got := a.Leased(); got != uint64(len(specs)) {
		t.Fatalf("agent leased = %d, want %d (every batched grant counts)", got, len(specs))
	}
	if calls := leaseCalls.Load(); calls > 3 {
		t.Fatalf("lease polls = %d for %d tasks; batching did not amortize", calls, len(specs))
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
