package fleet

// Hot-standby replication and epoch-fenced failover (DESIGN.md §15).
//
// The primary's fleet journal is already a complete, order-tolerant,
// per-record-hashed description of campaign state — PR 8 proved that
// by SIGKILLing the coordinator and replaying it with -resume. HA
// reuses exactly that artifact: a standby tails the journal over
// GET /fleet/v1/journal/stream, verifies each record's sha256, folds
// it into a live replayAccum (the same accumulator -resume uses), and
// mirrors it into its own journal. Promotion — automatic after
// FailoverAfter without primary contact, or operator-forced via
// POST /fleet/v1/promote — is then nothing more than -resume without
// the restart: install the accumulator, open term maxTerm+1, start the
// lease sweeper, and best-effort fence the old primary with the new
// term so a still-alive deposed incarnation steps aside immediately.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
)

// handleStream serves one replication batch from the coordinator's own
// journal file. Reading the live file concurrently with appends is
// safe: records are newline-framed and individually hashed, and
// ReadJournalAt never advances past an unterminated tail — a torn line
// is simply re-read whole on the follower's next poll.
func (c *Coordinator) handleStream(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Journal == nil {
		writeJSON(w, http.StatusNotFound,
			server.StatusResponse{Error: "coordinator has no journal to replicate"})
		return
	}
	q := r.URL.Query()
	from, _ := strconv.ParseInt(q.Get("from"), 10, 64)
	if from < 0 {
		from = 0
	}
	max, _ := strconv.Atoi(q.Get("max"))
	if max <= 0 {
		max = 512
	}
	if max > 4096 {
		max = 4096
	}
	path := c.cfg.Journal.Path()
	fi, err := os.Stat(path)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			server.StatusResponse{Error: "journal stat: " + err.Error()})
		return
	}
	if from > fi.Size() {
		// The follower's offset is past the file: the journal was
		// compacted or replaced. Restart the follower from zero.
		writeJSON(w, http.StatusOK, StreamResponse{Reset: true, Term: c.Term()})
		return
	}
	recs, next, err := exp.ReadJournalAt(path, from, max)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			server.StatusResponse{Error: "journal read: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, StreamResponse{
		Records: recs,
		Next:    next,
		Term:    c.Term(),
		More:    next < fi.Size(),
	})
}

// StandbyConfig parameterizes a hot standby.
type StandbyConfig struct {
	// Primary is the base URL of the coordinator to follow.
	Primary string

	// Fleet configures the coordinator this standby becomes on
	// promotion. Its Journal (if any) receives the mirrored replication
	// records while following, so a crashed standby resumes from its
	// own disk like any coordinator.
	Fleet Config

	// PollInterval paces the replication stream. Default 500ms.
	PollInterval time.Duration

	// FailoverAfter is how long the primary may be unreachable before
	// the standby promotes itself. 0 disables automatic failover —
	// promotion then only happens via POST /fleet/v1/promote.
	FailoverAfter time.Duration

	// BatchLimit caps records per stream poll. Default 512.
	BatchLimit int

	// HTTP overrides the poll client (tests); default 10s timeout.
	HTTP *http.Client

	// Logf, when set, receives follow/promotion lifecycle lines.
	Logf func(format string, args ...any)
}

func (sc *StandbyConfig) fillDefaults() {
	if sc.PollInterval <= 0 {
		sc.PollInterval = 500 * time.Millisecond
	}
	if sc.BatchLimit <= 0 {
		sc.BatchLimit = 512
	}
	if sc.HTTP == nil {
		sc.HTTP = &http.Client{Timeout: 10 * time.Second}
	}
	if sc.Logf == nil {
		sc.Logf = func(string, ...any) {}
	}
}

// Standby follows a primary coordinator's journal and can take over
// its campaign. Before promotion it serves only health, metrics, and
// the promote endpoint — everything else answers 503 with
// X-Fleet-Standby so clients rotate to the primary. After promotion it
// is the coordinator: Handler delegates wholesale.
type Standby struct {
	cfg StandbyConfig
	reg obs.Registry

	mu          sync.Mutex
	accum       *replayAccum
	offset      int64
	term        uint64 // primary's term as last observed on the stream
	lastContact time.Time
	started     time.Time
	runCtx      context.Context
	promoted    *Coordinator
	handler     http.Handler // promoted coordinator's handler, built once
	stats       ReplayStats  // promotion-time install stats (operator visibility)

	applied uint64 // records verified and absorbed
	bad     uint64 // records that failed hash verification (dropped)
	resets  uint64 // stream restarts from offset zero
	polls   uint64 // stream polls attempted
	fails   uint64 // stream polls that errored
}

// NewStandby builds a standby follower for cfg.Primary.
func NewStandby(cfg StandbyConfig) *Standby {
	cfg.fillDefaults()
	now := time.Now()
	s := &Standby{
		cfg:         cfg,
		accum:       newReplayAccum(),
		lastContact: now,
		started:     now,
	}
	s.registerObs()
	return s
}

func (s *Standby) registerObs() {
	counter := func(name string, p *uint64) {
		s.reg.Counter(name, func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return *p
		})
	}
	counter("standby_records_applied", &s.applied)
	counter("standby_bad_records", &s.bad)
	counter("standby_stream_resets", &s.resets)
	counter("standby_stream_polls", &s.polls)
	counter("standby_stream_errors", &s.fails)
	s.reg.Gauge("standby_offset", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.offset)
	})
	s.reg.Gauge("standby_term", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.term)
	})
	s.reg.Gauge("standby_promoted", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.promoted != nil {
			return 1
		}
		return 0
	})
}

// Run follows the primary until ctx ends or the standby promotes; it
// returns the promoted coordinator (nil if ctx ended while still a
// follower). Automatic failover fires when the primary has been
// unreachable for FailoverAfter.
func (s *Standby) Run(ctx context.Context) *Coordinator {
	s.mu.Lock()
	s.runCtx = ctx
	s.mu.Unlock()
	for {
		if c := s.Coordinator(); c != nil {
			return c
		}
		more, err := s.pollOnce(ctx)
		if err != nil {
			s.mu.Lock()
			s.fails++
			gap := time.Since(s.lastContact)
			auto := s.cfg.FailoverAfter > 0 && gap >= s.cfg.FailoverAfter
			s.mu.Unlock()
			if ctx.Err() != nil {
				return nil
			}
			if auto {
				c, term := s.Promote(fmt.Sprintf("primary unreachable for %v: %v", gap.Round(time.Millisecond), err))
				s.cfg.Logf("standby: promoted to term %d (%s)", term, "auto failover")
				return c
			}
		}
		if more {
			continue // drain a backlog without pacing
		}
		select {
		case <-ctx.Done():
			return s.Coordinator()
		case <-time.After(s.cfg.PollInterval):
		}
	}
}

// pollOnce fetches and absorbs one replication batch. It returns
// whether the primary reported more records immediately available.
func (s *Standby) pollOnce(ctx context.Context) (bool, error) {
	s.mu.Lock()
	from := s.offset
	s.polls++
	s.mu.Unlock()

	url := fmt.Sprintf("%s/fleet/v1/journal/stream?from=%d&max=%d", s.cfg.Primary, from, s.cfg.BatchLimit)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	httpResp, err := s.cfg.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("stream: %s", httpResp.Status)
	}
	var resp StreamResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return false, fmt.Errorf("stream decode: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastContact = time.Now()
	if resp.Reset || (s.term != 0 && resp.Term != 0 && resp.Term != s.term) {
		// The journal behind the offset changed identity (compacted, or
		// a new primary incarnation took over the address). Restart the
		// accumulation from zero — order tolerance makes the re-read
		// converge to the same state.
		s.cfg.Logf("standby: stream reset (term %d -> %d), re-reading from 0", s.term, resp.Term)
		s.accum = newReplayAccum()
		s.offset = 0
		s.term = resp.Term
		s.resets++
		return true, nil
	}
	if resp.Term != 0 {
		s.term = resp.Term
	}
	var mirror []exp.Record
	for _, rec := range resp.Records {
		if !exp.VerifyRecord(rec) {
			// A record torn or corrupted in flight: dropped and counted.
			// The journal's own integrity hashing already guarantees the
			// primary never served this from disk intact-but-wrong.
			s.bad++
			continue
		}
		s.accum.absorb(rec)
		s.applied++
		mirror = append(mirror, rec)
	}
	s.offset = resp.Next
	if s.cfg.Fleet.Journal != nil && len(mirror) > 0 {
		// Mirror the verified records into our own journal — one fsync
		// per batch — so a standby that crashes and restarts resumes
		// following with its state already on disk.
		_ = s.cfg.Fleet.Journal.AppendBatch(mirror)
	}
	return resp.More, nil
}

// Promote turns the standby into the serving coordinator: install the
// accumulated replay (re-arming in-flight leases exactly as -resume
// does), take office at term maxTerm+1, start the lease sweeper, and
// best-effort fence the old primary. Idempotent — a second call
// returns the same coordinator and term.
func (s *Standby) Promote(reason string) (*Coordinator, uint64) {
	s.mu.Lock()
	if s.promoted != nil {
		c := s.promoted
		s.mu.Unlock()
		return c, c.Term()
	}
	c := New(s.cfg.Fleet)
	stats := c.installReplay(s.accum)
	term := c.OpenTerm()
	s.promoted = c
	s.handler = c.Handler()
	s.stats = stats
	ctx := s.runCtx
	s.mu.Unlock()

	if ctx == nil {
		ctx = context.Background()
	}
	c.Start(ctx)
	s.cfg.Logf("standby: promoting (%s): term=%d completed=%d pending=%d re-armed=%d quarantined=%d unrecoverable=%d",
		reason, term, stats.Completed, stats.Pending, stats.Leased, stats.Quarantined, stats.Unrecoverable)
	s.fencePrimary(term)
	return c, term
}

// fencePrimary tells the old primary its term is over. Best-effort: if
// the primary is dead the POST fails and nothing is lost — the fence
// also travels with every worker request that carries the new term.
func (s *Standby) fencePrimary(term uint64) {
	body, _ := json.Marshal(TermRequest{Term: term})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		s.cfg.Primary+"/fleet/v1/term", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := s.cfg.HTTP.Do(req); err == nil {
		resp.Body.Close()
	}
}

// Coordinator returns the promoted coordinator, or nil while still
// following.
func (s *Standby) Coordinator() *Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// InstallStats reports the promotion-time replay install (zero value
// while still following).
func (s *Standby) InstallStats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Handler serves the standby's HTTP surface. Before promotion:
// health/readiness that identify a follower, standby metrics, and the
// promote endpoint; every other path answers 503 + X-Fleet-Standby so
// clients rotate to the primary. After promotion it delegates to the
// coordinator's full handler — same address, new incarnation.
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// A follower is alive but not ready: it must not take traffic
		// until promoted.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, s.health())
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.reg.WriteSnapshot(w)
	})
	mux.HandleFunc("POST /fleet/v1/promote", func(w http.ResponseWriter, r *http.Request) {
		_, term := s.Promote("operator request")
		s.cfg.Logf("standby: promoted to term %d (operator request)", term)
		writeJSON(w, http.StatusOK, PromoteResponse{Term: term, Promoted: true})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderStandby, "1")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			server.StatusResponse{Error: "standby: not promoted", RetryAfterMS: 1000})
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		h := s.handler
		s.mu.Unlock()
		if h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func (s *Standby) health() server.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return server.Health{
		Version: server.Version,
		UptimeS: time.Since(s.started).Seconds(),
		Engine:  "fleet-standby",
		Term:    s.term,
	}
}
