package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestSoakFleetSaturation is `make soak-fleet`: a 10k-task saturation
// campaign (twin-tier grants batched 16-wide) through a primary + hot
// standby, with the primary killed mid-campaign. Execution is stubbed —
// the soak measures the control plane: grant throughput, the failover
// gap, and how much work the replication gap re-ran. Results land in
// BENCH_PR10.json (override with HETSIM_BENCH_OUT).
//
// Gated behind HETSIM_SOAK_FLEET=1: minutes of fsync-bound journal
// traffic, not unit-test material.
func TestSoakFleetSaturation(t *testing.T) {
	if os.Getenv("HETSIM_SOAK_FLEET") == "" {
		t.Skip("set HETSIM_SOAK_FLEET=1 to run the fleet saturation soak")
	}
	const tasks = 10_000
	dir := t.TempDir()

	pj, _, _, err := exp.OpenJournal(filepath.Join(dir, "primary.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer pj.Close()
	primary := New(Config{
		LeaseTTL: 10 * time.Second, LeaseBatch: 16,
		QueueDepth: tasks + 64, ID: "primary", Journal: pj,
	})
	primary.OpenTerm()
	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	primary.Start(pctx)
	pts := httptest.NewServer(primary.Handler())

	sj, _, _, err := exp.OpenJournal(filepath.Join(dir, "standby.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close()
	sb := NewStandby(StandbyConfig{
		Primary: pts.URL,
		Fleet: Config{
			LeaseTTL: 10 * time.Second, LeaseBatch: 16,
			QueueDepth: tasks + 64, ID: "standby", Journal: sj,
		},
		PollInterval:  20 * time.Millisecond,
		FailoverAfter: 300 * time.Millisecond,
		BatchLimit:    2048,
		Logf:          t.Logf,
	})
	sts := httptest.NewServer(sb.Handler())
	defer sts.Close()
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	go sb.Run(sctx)

	// The campaign: every twin-tier mix×policy cell (the batched tier),
	// padded to 10k with distinct random scenarios.
	rng := rand.New(rand.NewSource(20260808))
	var specs []exp.TaskSpec
	for _, m := range append(workloads.EvalMixes(), workloads.MotivationMixes()...) {
		for p := 0; p < 9; p++ {
			spec := exp.MixTaskSpec(m.ID, sim.Policy(p))
			spec.Tier = exp.TierTwin
			specs = append(specs, spec)
		}
	}
	for len(specs) < tasks {
		specs = append(specs, exp.ScenarioTaskSpec(scenario.Rand(rng.Uint64()), sim.Policy(rng.Intn(9))))
	}
	specs = specs[:tasks]
	start := time.Now()
	for _, spec := range specs {
		if resp, code := primary.Admit(spec); code != 202 && code != 200 {
			t.Fatalf("admit %s: code %d (%s)", spec.Key(), code, resp.Error)
		}
	}
	admitted := time.Since(start)

	// Three agents with stubbed execution, each addressing the
	// replicated pair; execution counts expose post-failover recompute.
	var execMu sync.Mutex
	execs := make(map[string]int, tasks)
	runStub := func(ctx context.Context, spec exp.TaskSpec) (exp.TaskResult, error) {
		execMu.Lock()
		execs[spec.Key()]++
		execMu.Unlock()
		return exp.TaskResult{IPC: 1}, nil
	}
	pair := pts.URL + "," + sts.URL
	for i := 0; i < 3; i++ {
		_, stop := startAgent(t, pair, fmt.Sprintf("w%d", i+1), runStub)
		defer stop()
	}

	storeSize := func(c *Coordinator) int { return int(c.Counters()["fleet_store_size"]) }
	deadline := time.Now().Add(10 * time.Minute)
	for storeSize(primary) < tasks/2 {
		if time.Now().After(deadline) {
			t.Fatalf("primary stalled at %d completions", storeSize(primary))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary: listener down, sweeper stopped, no drain.
	primaryGrants := primary.Counters()["fleet_leases_granted"]
	killAt := time.Now()
	pcancel()
	pts.CloseClientConnections()
	pts.Close()

	var promoted *Coordinator
	for promoted == nil {
		if time.Now().After(deadline) {
			t.Fatal("standby never promoted")
		}
		promoted = sb.Coordinator()
		time.Sleep(time.Millisecond)
	}
	promoteGap := time.Since(killAt)
	grantsAtPromote := promoted.Counters()["fleet_leases_granted"]
	for promoted.Counters()["fleet_leases_granted"] <= grantsAtPromote {
		if time.Now().After(deadline) {
			t.Fatal("promoted coordinator never granted a lease")
		}
		time.Sleep(time.Millisecond)
	}
	firstGrantGap := time.Since(killAt)

	for storeSize(promoted) < tasks {
		if time.Now().After(deadline) {
			t.Fatalf("promoted coordinator stalled at %d completions", storeSize(promoted))
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	if err := promoted.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	execMu.Lock()
	recomputed, executions := 0, 0
	for _, n := range execs {
		executions += n
		if n > 1 {
			recomputed++
		}
	}
	execMu.Unlock()
	totalGrants := primaryGrants + promoted.Counters()["fleet_leases_granted"]

	bench := map[string]any{
		"bench":            "fleet-saturation-ha",
		"tasks":            tasks,
		"workers":          3,
		"lease_batch":      16,
		"admit_ms":         admitted.Milliseconds(),
		"duration_ms":      elapsed.Milliseconds(),
		"grants_total":     totalGrants,
		"grants_per_sec":   float64(totalGrants) / elapsed.Seconds(),
		"tasks_per_sec":    float64(tasks) / elapsed.Seconds(),
		"promote_gap_ms":   promoteGap.Milliseconds(),
		"failover_gap_ms":  firstGrantGap.Milliseconds(),
		"executions":       executions,
		"recomputed_keys":  recomputed,
		"term":             promoted.Term(),
		"affinity_hits":    promoted.Counters()["fleet_affinity_hits"],
		"stale_term_drops": 0,
	}
	out := os.Getenv("HETSIM_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR10.json"
	}
	raw, _ := json.MarshalIndent(bench, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d tasks in %v (%.0f grants/sec), promote gap %v, first grant %v, %d keys recomputed -> %s",
		tasks, elapsed.Round(time.Millisecond), bench["grants_per_sec"], promoteGap.Round(time.Millisecond),
		firstGrantGap.Round(time.Millisecond), recomputed, out)
}
