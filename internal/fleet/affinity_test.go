package fleet

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

func TestAffinityGrantsWarmFamilyOverColdHead(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	m1a := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyBaseline))
	complete := func(worker, key string) {
		t.Helper()
		if cr := c.Complete(CompleteRequest{Worker: worker, Key: key, Result: okResult()}); !cr.Accepted {
			t.Fatalf("complete %s: %+v", key, cr)
		}
	}
	// w1 takes the only task in FIFO order (no family is warm yet) and
	// completes it: mix/M1 is now warm for w1.
	if l := c.Lease("w1"); l.None || l.Key != m1a {
		t.Fatalf("cold lease = %+v", l)
	}
	complete("w1", m1a)

	m2 := mustAdmit(t, c, exp.MixTaskSpec("M2", sim.PolicyBaseline))
	m1b := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyCMBAL))

	// The head (M2) is cold for w1 but M1 sits behind it: affinity
	// grants the M1 policy to the worker holding M1's warm caches, and
	// the skipped head stays first in line for everyone else.
	if l := c.Lease("w1"); l.None || l.Key != m1b {
		t.Fatalf("affinity lease = %+v, want %s", l, m1b)
	}
	if l := c.Lease("w2"); l.None || l.Key != m2 {
		t.Fatalf("head after affinity skip = %+v, want %s", l, m2)
	}
	if hits := c.Counters()["fleet_affinity_hits"]; hits != 1 {
		t.Fatalf("fleet_affinity_hits = %v, want 1", hits)
	}
	complete("w1", m1b)
	complete("w2", m2)

	// A warm head is the in-order AND affinity choice: granted, counted.
	m1c := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyThrottle))
	if l := c.Lease("w1"); l.None || l.Key != m1c {
		t.Fatalf("warm head lease = %+v", l)
	}
	if hits := c.Counters()["fleet_affinity_hits"]; hits != 2 {
		t.Fatalf("fleet_affinity_hits = %v, want 2", hits)
	}
	complete("w1", m1c)
	mustConserve(t, c)
}

func TestAffinityDisabledIsStrictFIFO(t *testing.T) {
	c, _ := testCoordinator(t, func(cfg *Config) { cfg.AffinityScan = -1 })
	m1a := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyBaseline))
	if l := c.Lease("w1"); l.Key != m1a {
		t.Fatalf("lease = %+v", l)
	}
	if cr := c.Complete(CompleteRequest{Worker: "w1", Key: m1a, Result: okResult()}); !cr.Accepted {
		t.Fatalf("complete: %+v", cr)
	}
	m2 := mustAdmit(t, c, exp.MixTaskSpec("M2", sim.PolicyBaseline))
	mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyCMBAL))
	// With the scan disabled w1 gets the cold head, warm family or not.
	if l := c.Lease("w1"); l.Key != m2 {
		t.Fatalf("lease = %+v, want strict FIFO head %s", l, m2)
	}
	if hits := c.Counters()["fleet_affinity_hits"]; hits != 0 {
		t.Fatalf("fleet_affinity_hits = %v, want 0 when disabled", hits)
	}
}

func TestAffinityScanIsBounded(t *testing.T) {
	c, _ := testCoordinator(t, func(cfg *Config) { cfg.AffinityScan = 2 })
	warm := mustAdmit(t, c, exp.MixTaskSpec("M9", sim.PolicyBaseline))
	if l := c.Lease("w1"); l.Key != warm {
		t.Fatalf("lease = %+v", l)
	}
	if cr := c.Complete(CompleteRequest{Worker: "w1", Key: warm, Result: okResult()}); !cr.Accepted {
		t.Fatalf("complete: %+v", cr)
	}
	// Queue: M1, M2, M3, then the warm M9 — beyond a scan budget of 2,
	// so the head is granted in order and no hit is counted.
	head := mustAdmit(t, c, exp.MixTaskSpec("M1", sim.PolicyBaseline))
	mustAdmit(t, c, exp.MixTaskSpec("M2", sim.PolicyBaseline))
	mustAdmit(t, c, exp.MixTaskSpec("M3", sim.PolicyBaseline))
	mustAdmit(t, c, exp.MixTaskSpec("M9", sim.PolicyCMBAL))
	if l := c.Lease("w1"); l.Key != head {
		t.Fatalf("lease = %+v, want bounded scan to give up and grant %s", l, head)
	}
	if hits := c.Counters()["fleet_affinity_hits"]; hits != 0 {
		t.Fatalf("fleet_affinity_hits = %v, want 0 past the scan bound", hits)
	}
}
