// Scenario example: a time-varying workload declared as data
// (DESIGN.md §12). launch.json describes an app launch on DOOM3 — two
// SPEC cores, a phase boundary that swaps core 1's workload once the
// launch settles, and a tracev2 capture (capture.jsonl) that replays
// the captured CPU access streams and the GPU's per-frame work
// envelope instead of the synthetic models.
//
// The same file drives every tool:
//
//	go run ./examples/scenario
//	hetsim  -scenario examples/scenario/launch.json -policy throttle+prio
//	sweep   -scenario examples/scenario/launch.json -policies baseline,throttle+prio
//	hetsimctl -scenario examples/scenario/launch.json -policy throttle+prio run
//
// (the client inlines the capture before submission, so the daemon
// needs no access to this directory), and rerunning any of them
// reproduces the result exactly — scenarios are seed- and
// content-deterministic.
package main

import (
	"fmt"

	"repro/hetsim"
)

func main() {
	sp, err := hetsim.LoadScenario("examples/scenario/launch.json")
	if err != nil {
		panic(err)
	}
	if err := sp.Validate(); err != nil {
		panic(err)
	}

	cfg := hetsim.DefaultConfig(96)

	base, err := hetsim.RunScenario(cfg, sp)
	if err != nil {
		panic(err)
	}
	cfg.Policy = hetsim.PolicyThrottleCPUPrio
	prop, err := hetsim.RunScenario(cfg, sp)
	if err != nil {
		panic(err)
	}

	fmt.Printf("scenario %s (%s), digest %s\n\n", sp.Name, sp.Game, sp.Digest())
	fmt.Printf("%-22s %10s %10s\n", "", "baseline", "proposal")
	fmt.Printf("%-22s %10.2f %10.2f\n", "mean CPU IPC", base.MeanIPC(), prop.MeanIPC())
	fmt.Printf("%-22s %10.1f %10.1f\n", "GPU FPS", base.GPUFPS, prop.GPUFPS)
	fmt.Printf("%-22s %10d %10d\n", "frames below target", base.FrameStats.BelowTarget, prop.FrameStats.BelowTarget)
}
