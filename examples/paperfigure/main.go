// Paperfigure: regenerate one of the paper's figures programmatically
// through the public experiment harness and render it as an ASCII bar
// chart — the same path `cmd/experiments -format chart` uses, shown
// here as a library.
//
// Usage: go run ./examples/paperfigure [fig9]
package main

import (
	"fmt"
	"os"

	"repro/hetsim"
	"repro/internal/report"
)

func main() {
	id := "fig9"
	if len(os.Args) > 1 {
		id = os.Args[1]
	}

	cfg := hetsim.DefaultConfig(128) // small but quick for a demo
	cfg.WarmupInstr /= 4
	cfg.MeasureInstr /= 4
	cfg.MinFrames = 3

	runner := hetsim.NewRunner(cfg)
	rep, err := runner.ByID(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "available:", hetsim.ExperimentIDs())
		os.Exit(2)
	}
	if err := report.Write(os.Stdout, rep, report.FormatChart); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
