// Renderfarm: the paper's HPC motivation (§I) — the CPU cores run a
// scientific simulation time-step while the GPU renders the previous
// steps' output for in-situ visualization. The visualization only
// needs to keep up with the display (the QoS target); every frame
// beyond that steals memory bandwidth from the simulation.
//
// This example builds that scenario from custom workload models via
// the public API (no Table III mix): a stencil-like streaming solver
// on all four cores and a moderate-rate visualization workload on the
// GPU, compared across baseline / throttle / throttle+CPU-priority.
package main

import (
	"fmt"

	"repro/hetsim"
)

func main() {
	const scale = 96
	cfg := hetsim.DefaultConfig(scale)

	// Four copies of a bandwidth-hungry stencil solver: streaming
	// sweeps over a large grid with a small cache-resident kernel.
	solver := hetsim.TraceParams{
		Name:       "stencil-solver",
		MemPerKilo: 300,
		WriteFrac:  0.4,
		StreamFrac: 0.05,
		HotFrac:    0.93,
		HotBytes:   192 << 10,
		WSBytes:    24 << 20,
		Seed:       7001,
	}
	cpus := []hetsim.TraceParams{solver, solver, solver, solver}
	for i := range cpus {
		cpus[i].Seed += uint64(i) // decorrelate the four ranks
	}

	// The visualization pass: renders the last time-step at 1600x1200.
	// Its natural rate is far above what a human needs.
	viz, err := hetsim.GameByName("Quake4") // reuse an R3 pipeline shape
	if err != nil {
		panic(err)
	}
	vizModel := viz.Model(scale, cfg.GPUFreqHz)
	vizModel.Name = "insitu-viz"

	fmt.Println("HPC in-situ visualization: 4x stencil solver + GPU rendering")
	fmt.Printf("%-18s %8s %10s %12s\n", "policy", "FPS", "meanIPC", "solver gain")

	var baseIPC float64
	for _, p := range []hetsim.Policy{
		hetsim.PolicyBaseline, hetsim.PolicyThrottle, hetsim.PolicyThrottleCPUPrio,
	} {
		c := cfg
		c.Policy = p
		sys := hetsim.NewSystem(c, vizModel, cpus)
		r := hetsim.Run(sys)
		if p == hetsim.PolicyBaseline {
			baseIPC = r.MeanIPC()
		}
		gain := r.MeanIPC() / baseIPC
		fmt.Printf("%-18s %8.1f %10.3f %11.1f%%\n", p, r.GPUFPS, r.MeanIPC(), 100*(gain-1))
	}
	fmt.Println("\nThe visualization keeps meeting the 40 FPS target while the")
	fmt.Println("solver reclaims the memory bandwidth the GPU did not need.")
}
