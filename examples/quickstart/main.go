// Quickstart: run one heterogeneous mix under the paper's baseline
// and under the full proposal (GPU access throttling + CPU priority),
// and print what the QoS-driven memory management buys the CPUs.
package main

import (
	"fmt"

	"repro/hetsim"
)

func main() {
	// Scale 96 keeps this example under a few seconds; smaller scale
	// values run closer to the paper's full-size system.
	cfg := hetsim.DefaultConfig(96)

	// M7 pairs DOOM3 (a >40 FPS title, so the throttle engages) with
	// four SPEC CPU 2006 applications (Table III).
	mix, err := hetsim.MixByID("M7")
	if err != nil {
		panic(err)
	}

	base := hetsim.RunMix(cfg, mix)

	cfg.Policy = hetsim.PolicyThrottleCPUPrio
	prop := hetsim.RunMix(cfg, mix)

	fmt.Printf("mix %s: %s + SPEC %v\n\n", mix.ID, mix.Game, mix.SpecIDs)
	fmt.Printf("%-22s %10s %10s\n", "", "baseline", "proposal")
	fmt.Printf("%-22s %10.1f %10.1f\n", "GPU frames/second", base.GPUFPS, prop.GPUFPS)
	for i := range base.IPC {
		fmt.Printf("core%d IPC%-13s %10.3f %10.3f\n", i, "", base.IPC[i], prop.IPC[i])
	}

	ws := 0.0
	for i := range prop.IPC {
		ws += prop.IPC[i] / base.IPC[i]
	}
	ws /= float64(len(prop.IPC))
	fmt.Printf("\nweighted CPU speedup with the proposal: %.2fx\n", ws)
	fmt.Printf("GPU held at the %.0f FPS QoS target (was %.1f) — the slack became CPU performance.\n",
		cfg.TargetFPS, base.GPUFPS)
}
