// Customworkload: define a GPU rendering workload and CPU trace
// models from scratch — nothing from the Table II/III catalogs — and
// measure how the QoS controller behaves on them, including a target
// frame-rate sweep.
//
// This is the template for studying your own application: pick the
// frame structure (tiles, overdraw, texture footprint, shader work)
// and the CPU-side memory character, then run any policy.
package main

import (
	"fmt"

	"repro/hetsim"
)

func main() {
	scale := 96
	cfg := hetsim.DefaultConfig(scale)
	computeBudget := uint64(1e9 / (150.0 * float64(scale) * 2)) // ~150 FPS compute budget

	// A hypothetical 1080p UI-heavy title: low overdraw, small
	// textures with high reuse, modest shader work -> very high
	// natural frame rate (a prime throttling candidate).
	ui := &hetsim.AppModel{
		Name:               "ui-compositor",
		API:                "DX",
		Frames:             8,
		Tiles:              1920 * 1080 / 1024 / scale,
		RTPs:               2,
		TexPerTile:         48,
		DepthPerTile:       64,
		ColorPerTile:       64,
		VertexPerRTP:       16,
		TexFootprint:       uint64(64<<20) / uint64(scale),
		TexHotBytes:        uint64(4<<20) / uint64(scale),
		TexHotFrac:         0.85,
		ShaderCyclesPerRTP: computeBudget,
		WorkJitter:         0.02,
		Seed:               42,
	}

	// A latency-sensitive pointer-chasing service on two cores.
	service := hetsim.TraceParams{
		Name:       "graph-service",
		MemPerKilo: 300,
		WriteFrac:  0.2,
		StreamFrac: 0.01,
		HotFrac:    0.9,
		HotBytes:   256 << 10,
		WSBytes:    24 << 20,
		Seed:       1,
	}
	other := service
	other.Seed = 2
	cpus := []hetsim.TraceParams{service, other}

	cfgBase := cfg
	cfgBase.NumCPUs = 2
	base := hetsim.Run(hetsim.NewSystem(cfgBase, ui, cpus))
	fmt.Printf("baseline: %.0f FPS, mean IPC %.3f\n\n", base.GPUFPS, base.MeanIPC())

	fmt.Printf("%-12s %8s %10s %12s\n", "targetFPS", "FPS", "meanIPC", "CPU gain")
	for _, target := range []float64{30, 40, 60, 90} {
		c := cfgBase
		c.Policy = hetsim.PolicyThrottleCPUPrio
		c.TargetFPS = target
		r := hetsim.Run(hetsim.NewSystem(c, ui, cpus))
		fmt.Printf("%-12.0f %8.1f %10.3f %11.1f%%\n",
			target, r.GPUFPS, r.MeanIPC(), 100*(r.MeanIPC()/base.MeanIPC()-1))
	}
	fmt.Println("\nLower QoS targets free more memory-system headroom for the CPUs;")
	fmt.Println("the controller never throttles below the target you set.")
}
