// Gamephysics: the paper's gaming motivation (§I) — while the GPU
// renders the current frame, the CPU cores compute the physics and AI
// of the next frame. The example sweeps every policy the paper
// compares (SMS variants, DynPrio, HeLM, and the proposal) on one
// high-frame-rate mix and prints the Fig. 12-style comparison.
package main

import (
	"fmt"

	"repro/hetsim"
)

func main() {
	cfg := hetsim.DefaultConfig(96)

	// M13: UT2004 (well above the 40 FPS target) with four SPEC apps
	// standing in for physics/AI and unrelated background jobs.
	mix, err := hetsim.MixByID("M13")
	if err != nil {
		panic(err)
	}

	policies := []hetsim.Policy{
		hetsim.PolicyBaseline,
		hetsim.PolicySMS09,
		hetsim.PolicySMS0,
		hetsim.PolicyDynPrio,
		hetsim.PolicyHeLM,
		hetsim.PolicyThrottleCPUPrio,
	}

	fmt.Printf("mix %s: %s + SPEC %v\n\n", mix.ID, mix.Game, mix.SpecIDs)
	fmt.Printf("%-14s %8s %12s %14s\n", "policy", "FPS", "CPU speedup", "GPU DRAM MB")

	var base hetsim.Result
	for i, p := range policies {
		c := cfg
		c.Policy = p
		r := hetsim.RunMix(c, mix)
		if i == 0 {
			base = r
		}
		ws := 0.0
		for j := range r.IPC {
			if base.IPC[j] > 0 {
				ws += r.IPC[j] / base.IPC[j]
			}
		}
		ws /= float64(len(r.IPC))
		fmt.Printf("%-14s %8.1f %11.2fx %14d\n",
			p, r.GPUFPS, ws, r.GPUBandwidthBytes()/(1<<20))
	}

	fmt.Println("\nThe proposal trades GPU frames nobody can see (above 40 FPS)")
	fmt.Println("for next-frame physics/AI throughput on the CPU cores.")
}
